package encoding

import (
	"fmt"
	"math/rand"

	"boosthd/internal/hdc"
)

// IDLevelEncoder implements the classic record-based HDC encoding: each
// feature index gets a random ID hypervector, each quantized magnitude a
// level hypervector, and a sample is the bundle of Bind(ID_i, Level(x_i)).
// Level hypervectors are built by progressively flipping components of a
// base vector so nearby magnitudes stay similar (locality-preserving).
type IDLevelEncoder struct {
	InDim  int
	OutDim int
	Levels int
	Lo, Hi float64 // expected feature range; values are clamped

	ids    []hdc.Vector // one bipolar ID per feature
	levels []hdc.Vector // Levels bipolar vectors, progressively flipped
}

// NewIDLevel builds an ID-level encoder for features in [lo, hi] quantized
// into levels buckets.
func NewIDLevel(inDim, outDim, levels int, lo, hi float64, seed int64) (*IDLevelEncoder, error) {
	if inDim <= 0 || outDim <= 0 {
		return nil, fmt.Errorf("encoding: invalid dimensions in=%d out=%d", inDim, outDim)
	}
	if levels < 2 {
		return nil, fmt.Errorf("encoding: need at least 2 levels, got %d", levels)
	}
	if hi <= lo {
		return nil, fmt.Errorf("encoding: invalid range [%v, %v]", lo, hi)
	}
	rng := rand.New(rand.NewSource(seed))
	e := &IDLevelEncoder{InDim: inDim, OutDim: outDim, Levels: levels, Lo: lo, Hi: hi}
	e.ids = make([]hdc.Vector, inDim)
	for i := range e.ids {
		e.ids[i] = hdc.RandomBipolar(outDim, rng)
	}
	// Level 0 is random; each next level flips outDim/(2*(levels-1))
	// components so level 0 and level Levels-1 are ~orthogonal.
	e.levels = make([]hdc.Vector, levels)
	e.levels[0] = hdc.RandomBipolar(outDim, rng)
	perLevel := outDim / (2 * (levels - 1))
	if perLevel < 1 {
		perLevel = 1
	}
	perm := rng.Perm(outDim)
	pos := 0
	for l := 1; l < levels; l++ {
		v := e.levels[l-1].Clone()
		for k := 0; k < perLevel && pos < len(perm); k++ {
			v[perm[pos]] = -v[perm[pos]]
			pos++
		}
		e.levels[l] = v
	}
	return e, nil
}

// quantize maps a feature value to a level index, clamping to the range.
//
//hd:hotpath
func (e *IDLevelEncoder) quantize(x float64) int {
	if x <= e.Lo {
		return 0
	}
	if x >= e.Hi {
		return e.Levels - 1
	}
	l := int(float64(e.Levels) * (x - e.Lo) / (e.Hi - e.Lo))
	if l >= e.Levels {
		l = e.Levels - 1
	}
	return l
}

// Encode maps one feature vector to the bundled record hypervector.
func (e *IDLevelEncoder) Encode(x []float64) (hdc.Vector, error) {
	if len(x) != e.InDim {
		return nil, fmt.Errorf("encoding: feature length %d != InDim %d", len(x), e.InDim)
	}
	h := hdc.NewVector(e.OutDim)
	for i, xv := range x {
		lvl := e.levels[e.quantize(xv)]
		id := e.ids[i]
		for j := 0; j < e.OutDim; j++ {
			h[j] += id[j] * lvl[j]
		}
	}
	return h, nil
}

// LevelSim returns the cosine similarity between two quantization levels;
// tests use it to verify locality preservation.
func (e *IDLevelEncoder) LevelSim(a, b int) float64 {
	if a < 0 || b < 0 || a >= e.Levels || b >= e.Levels {
		return 0
	}
	return hdc.Cosine(e.levels[a], e.levels[b])
}
