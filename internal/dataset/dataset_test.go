package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func toy() *Dataset {
	return &Dataset{
		Name:       "toy",
		X:          [][]float64{{0}, {1}, {2}, {3}, {4}, {5}},
		Y:          []int{0, 0, 1, 1, 2, 2},
		Subjects:   []int{0, 1, 0, 1, 0, 1},
		NumClasses: 3,
	}
}

func TestValidate(t *testing.T) {
	d := toy()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := toy()
	bad.Y = bad.Y[:3]
	if err := bad.Validate(); err == nil {
		t.Error("expected length mismatch error")
	}
	bad = toy()
	bad.Y[0] = 9
	if err := bad.Validate(); err == nil {
		t.Error("expected label range error")
	}
	bad = toy()
	bad.X[2] = []float64{1, 2}
	if err := bad.Validate(); err == nil {
		t.Error("expected ragged error")
	}
	bad = toy()
	bad.NumClasses = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected NumClasses error")
	}
	bad = toy()
	bad.Subjects = []int{1}
	if err := bad.Validate(); err == nil {
		t.Error("expected subjects length error")
	}
}

func TestSubset(t *testing.T) {
	d := toy()
	s := d.Subset([]int{0, 2, 4})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Y[1] != 1 || s.Subjects[2] != 0 {
		t.Errorf("subset contents wrong: %v %v", s.Y, s.Subjects)
	}
	if s.NumFeatures() != 1 {
		t.Errorf("NumFeatures = %d", s.NumFeatures())
	}
	empty := &Dataset{NumClasses: 1}
	if empty.NumFeatures() != 0 {
		t.Error("empty dataset should have 0 features")
	}
}

func TestShuffleKeepsAlignment(t *testing.T) {
	d := toy()
	// Pair each label with its feature to verify alignment post-shuffle.
	orig := map[float64]int{}
	for i := range d.X {
		orig[d.X[i][0]] = d.Y[i]
	}
	d.Shuffle(rand.New(rand.NewSource(3)))
	for i := range d.X {
		if orig[d.X[i][0]] != d.Y[i] {
			t.Fatal("shuffle broke X/Y alignment")
		}
	}
}

func TestClassCounts(t *testing.T) {
	d := toy()
	c := d.ClassCounts()
	if c[0] != 2 || c[1] != 2 || c[2] != 2 {
		t.Errorf("ClassCounts = %v", c)
	}
}

func TestSubjectIDs(t *testing.T) {
	d := toy()
	ids := d.SubjectIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("SubjectIDs = %v", ids)
	}
}

func TestSplitBySubjects(t *testing.T) {
	d := toy()
	train, test, err := SplitBySubjects(d, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 3 || test.Len() != 3 {
		t.Fatalf("split sizes = %d/%d", train.Len(), test.Len())
	}
	for _, s := range test.Subjects {
		if s != 1 {
			t.Error("test contains non-test subject")
		}
	}
	for _, s := range train.Subjects {
		if s == 1 {
			t.Error("train contains test subject")
		}
	}
	if _, _, err := SplitBySubjects(d, []int{0, 1}); err == nil {
		t.Error("expected empty-side error")
	}
	noSub := toy()
	noSub.Subjects = nil
	if _, _, err := SplitBySubjects(noSub, []int{0}); err == nil {
		t.Error("expected no-subjects error")
	}
}

func TestStratifiedSplit(t *testing.T) {
	// 30 samples per class.
	d := &Dataset{Name: "s", NumClasses: 3}
	for c := 0; c < 3; c++ {
		for i := 0; i < 30; i++ {
			d.X = append(d.X, []float64{float64(c)})
			d.Y = append(d.Y, c)
		}
	}
	train, test, err := StratifiedSplit(d, 0.2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tc := test.ClassCounts()
	for c, n := range tc {
		if n != 6 {
			t.Errorf("class %d test count = %d, want 6", c, n)
		}
	}
	if train.Len()+test.Len() != d.Len() {
		t.Error("split lost samples")
	}
	if _, _, err := StratifiedSplit(d, 0, nil); err == nil {
		t.Error("expected frac error")
	}
	if _, _, err := StratifiedSplit(d, 1.5, nil); err == nil {
		t.Error("expected frac error")
	}
}

func TestImbalance(t *testing.T) {
	d := &Dataset{Name: "i", NumClasses: 2}
	for i := 0; i < 100; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%2)
	}
	rng := rand.New(rand.NewSource(2))
	out, err := Imbalance(d, 0, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := out.ClassCounts()
	if c[0] != 50 {
		t.Errorf("target class count = %d, want 50", c[0])
	}
	if c[1] != 10 { // (1-0.8)*50
		t.Errorf("other class count = %d, want 10", c[1])
	}
	// r=0 keeps everything.
	full, _ := Imbalance(d, 0, 0, rng)
	if full.Len() != 100 {
		t.Errorf("r=0 should keep all samples, got %d", full.Len())
	}
	if _, err := Imbalance(d, 0, 1, rng); err == nil {
		t.Error("expected r range error")
	}
	if _, err := Imbalance(d, 9, 0.5, rng); err == nil {
		t.Error("expected target range error")
	}
}

func TestImbalanceKeepsMinorityRepresented(t *testing.T) {
	d := &Dataset{Name: "i2", NumClasses: 2}
	for i := 0; i < 10; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%2)
	}
	out, err := Imbalance(d, 0, 0.9, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if out.ClassCounts()[1] < 1 {
		t.Error("non-target class must keep at least one sample")
	}
}

func TestAddLabelNoise(t *testing.T) {
	d := toy()
	orig := append([]int(nil), d.Y...)
	n, err := AddLabelNoise(d, 1.0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if n != d.Len() {
		t.Errorf("flipped %d, want all %d", n, d.Len())
	}
	for i := range d.Y {
		if d.Y[i] == orig[i] {
			t.Error("frac=1 must flip every label to a different class")
		}
		if d.Y[i] < 0 || d.Y[i] >= d.NumClasses {
			t.Error("noisy label out of range")
		}
	}
	if _, err := AddLabelNoise(d, -0.1, nil); err == nil {
		t.Error("expected frac error")
	}
	one := &Dataset{Y: []int{0}, X: [][]float64{{1}}, NumClasses: 1}
	if _, err := AddLabelNoise(one, 0.5, nil); err == nil {
		t.Error("expected class-count error")
	}
}

// Property: Subset never changes labels/subjects pairing.
func TestSubsetAlignmentQuick(t *testing.T) {
	d := toy()
	f := func(raw []uint8) bool {
		idx := make([]int, 0, len(raw))
		for _, r := range raw {
			idx = append(idx, int(r)%d.Len())
		}
		s := d.Subset(idx)
		for i, id := range idx {
			if s.Y[i] != d.Y[id] || s.Subjects[i] != d.Subjects[id] || &s.X[i][0] != &d.X[id][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Imbalance never increases any class count and never touches
// the target class.
func TestImbalanceMonotoneQuick(t *testing.T) {
	base := &Dataset{Name: "q", NumClasses: 3}
	for i := 0; i < 90; i++ {
		base.X = append(base.X, []float64{float64(i)})
		base.Y = append(base.Y, i%3)
	}
	f := func(rRaw uint8, seed int64) bool {
		r := float64(rRaw%100) / 100.0 // [0, 0.99]
		out, err := Imbalance(base, 1, r, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		c := out.ClassCounts()
		b := base.ClassCounts()
		if c[1] != b[1] {
			return false
		}
		return c[0] <= b[0] && c[2] <= b[2] && c[0] >= 1 && c[2] >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
