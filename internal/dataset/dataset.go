// Package dataset provides the tabular dataset substrate for the BoostHD
// evaluation: feature/label containers, subject-aware splits (the paper
// organizes test data "by subject units"), stratified splits, the Eq. 8
// class-imbalance generator used by the overfitting study (Figure 7), and
// label-noise injection.
package dataset

import (
	"fmt"
	"math/rand"
)

// Dataset is a labeled feature matrix with optional per-sample subject
// identifiers used for subject-wise evaluation.
type Dataset struct {
	Name       string
	X          [][]float64
	Y          []int
	Subjects   []int // optional: len 0 or len(Y)
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// NumFeatures returns the feature dimensionality (0 when empty).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural invariants: matching lengths, rectangular
// features, labels within [0, NumClasses).
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset %q: %d feature rows vs %d labels", d.Name, len(d.X), len(d.Y))
	}
	if len(d.Subjects) != 0 && len(d.Subjects) != len(d.Y) {
		return fmt.Errorf("dataset %q: %d subjects vs %d labels", d.Name, len(d.Subjects), len(d.Y))
	}
	if d.NumClasses <= 0 {
		return fmt.Errorf("dataset %q: NumClasses = %d", d.Name, d.NumClasses)
	}
	cols := -1
	for i, row := range d.X {
		if cols == -1 {
			cols = len(row)
		}
		if len(row) != cols {
			return fmt.Errorf("dataset %q: ragged row %d (%d cols, want %d)", d.Name, i, len(row), cols)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("dataset %q: label %d at row %d outside [0,%d)", d.Name, y, i, d.NumClasses)
		}
	}
	return nil
}

// Subset returns a new dataset holding the rows at idx (feature rows are
// shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:       d.Name,
		X:          make([][]float64, len(idx)),
		Y:          make([]int, len(idx)),
		NumClasses: d.NumClasses,
	}
	withSubjects := len(d.Subjects) == len(d.Y)
	if withSubjects {
		out.Subjects = make([]int, len(idx))
	}
	for i, id := range idx {
		out.X[i] = d.X[id]
		out.Y[i] = d.Y[id]
		if withSubjects {
			out.Subjects[i] = d.Subjects[id]
		}
	}
	return out
}

// Shuffle permutes the dataset in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	withSubjects := len(d.Subjects) == len(d.Y)
	rng.Shuffle(len(d.Y), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
		if withSubjects {
			d.Subjects[i], d.Subjects[j] = d.Subjects[j], d.Subjects[i]
		}
	})
}

// ClassCounts returns per-class sample counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		if y >= 0 && y < d.NumClasses {
			counts[y]++
		}
	}
	return counts
}

// SubjectIDs returns the sorted distinct subject identifiers.
func (d *Dataset) SubjectIDs() []int {
	seen := map[int]bool{}
	var ids []int
	for _, s := range d.Subjects {
		if !seen[s] {
			seen[s] = true
			ids = append(ids, s)
		}
	}
	// insertion-order stable is fine, but sort for determinism
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// SplitBySubjects partitions samples into train/test by subject membership:
// samples whose subject is in testSubjects go to test. The paper's
// evaluation keeps test data "organized by subject units".
func SplitBySubjects(d *Dataset, testSubjects []int) (train, test *Dataset, err error) {
	if len(d.Subjects) != len(d.Y) {
		return nil, nil, fmt.Errorf("dataset %q: no subject annotations", d.Name)
	}
	isTest := map[int]bool{}
	for _, s := range testSubjects {
		isTest[s] = true
	}
	var trainIdx, testIdx []int
	for i, s := range d.Subjects {
		if isTest[s] {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	if len(trainIdx) == 0 || len(testIdx) == 0 {
		return nil, nil, fmt.Errorf("dataset %q: subject split produced empty side (train=%d test=%d)",
			d.Name, len(trainIdx), len(testIdx))
	}
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// StratifiedSplit splits per class with the given test fraction, shuffling
// within classes using rng. testFrac must lie in (0, 1).
func StratifiedSplit(d *Dataset, testFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: testFrac %v outside (0,1)", testFrac)
	}
	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return nil, nil, fmt.Errorf("dataset %q: label %d out of range", d.Name, y)
		}
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	for _, idx := range byClass {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTest := int(float64(len(idx)) * testFrac)
		testIdx = append(testIdx, idx[:nTest]...)
		trainIdx = append(trainIdx, idx[nTest:]...)
	}
	if len(trainIdx) == 0 || len(testIdx) == 0 {
		return nil, nil, fmt.Errorf("dataset %q: stratified split produced empty side", d.Name)
	}
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// Imbalance implements the paper's Eq. 8 overfitting protocol: samples of
// the target class are all kept, while every other class keeps only a
// (1-r) fraction of its samples, subsampled with rng. r = 0 leaves the
// dataset unchanged; larger r means stronger imbalance. r must lie in
// [0, 1).
func Imbalance(d *Dataset, targetClass int, r float64, rng *rand.Rand) (*Dataset, error) {
	if r < 0 || r >= 1 {
		return nil, fmt.Errorf("dataset: imbalance ratio %v outside [0,1)", r)
	}
	if targetClass < 0 || targetClass >= d.NumClasses {
		return nil, fmt.Errorf("dataset: target class %d outside [0,%d)", targetClass, d.NumClasses)
	}
	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var keep []int
	for c, idx := range byClass {
		if c == targetClass {
			keep = append(keep, idx...)
			continue
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		n := int(float64(len(idx))*(1-r) + 0.5)
		if n < 1 && len(idx) > 0 {
			n = 1 // keep the class represented
		}
		keep = append(keep, idx[:n]...)
	}
	out := d.Subset(keep)
	out.Shuffle(rng)
	return out, nil
}

// AddLabelNoise flips the label of a frac fraction of samples to a
// different uniformly random class, in place. It returns the number of
// flipped labels.
func AddLabelNoise(d *Dataset, frac float64, rng *rand.Rand) (int, error) {
	if frac < 0 || frac > 1 {
		return 0, fmt.Errorf("dataset: noise fraction %v outside [0,1]", frac)
	}
	if d.NumClasses < 2 {
		return 0, fmt.Errorf("dataset: need >= 2 classes for label noise")
	}
	flipped := 0
	for i := range d.Y {
		if rng.Float64() < frac {
			ny := rng.Intn(d.NumClasses - 1)
			if ny >= d.Y[i] {
				ny++
			}
			d.Y[i] = ny
			flipped++
		}
	}
	return flipped, nil
}
