package hdc

import (
	"math/rand"
	"testing"
)

const benchDim = 10000

func benchVectors(b *testing.B) (Vector, Vector) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return RandomGaussian(benchDim, rng), RandomGaussian(benchDim, rng)
}

func BenchmarkBundle(b *testing.B) {
	x, y := benchVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Bundle(y)
	}
}

func BenchmarkBundleScaled(b *testing.B) {
	x, y := benchVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.BundleScaled(y, 0.035)
	}
}

func BenchmarkBind(b *testing.B) {
	x, y := benchVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Bind(x, y)
	}
}

func BenchmarkCosine(b *testing.B) {
	x, y := benchVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Cosine(x, y)
	}
}

func BenchmarkPermute(b *testing.B) {
	x, _ := benchVectors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Permute(x, 17)
	}
}

func BenchmarkHamming(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandomBits(benchDim, rng)
	y := RandomBits(benchDim, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Hamming(x, y)
	}
}

func BenchmarkXOR(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandomBits(benchDim, rng)
	y := RandomBits(benchDim, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = XOR(x, y)
	}
}

func BenchmarkMajority(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	vs := make([]*BitVector, 9)
	for i := range vs {
		vs[i] = RandomBits(benchDim, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Majority(vs...)
	}
}
