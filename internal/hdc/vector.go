// Package hdc provides the hyperdimensional-computing algebra underlying
// OnlineHD and BoostHD: dense real hypervectors with bundling, binding,
// permutation and cosine similarity (Section II-C of the paper), plus a
// packed bit-vector representation with XOR binding and Hamming similarity
// for hardware-oriented deployments.
package hdc

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense real-valued hypervector.
type Vector []float64

// NewVector returns a zero hypervector of dimension d.
func NewVector(d int) Vector { return make(Vector, d) }

// RandomGaussian returns a hypervector with i.i.d. N(0,1) components, the
// distribution the paper configures for OnlineHD ("Gaussian distribution
// N(0,1)").
func RandomGaussian(d int, rng *rand.Rand) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// RandomBipolar returns a hypervector with i.i.d. ±1 components.
func RandomBipolar(d int, rng *rand.Rand) Vector {
	v := make(Vector, d)
	for i := range v {
		if rng.Intn(2) == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Bundle accumulates src into v element-wise (R = V1 + V2), the HDC
// memorization primitive. It panics on dimension mismatch, which indicates
// a caller bug: all hypervectors in one space share a dimension.
//
//hd:mutates
func (v Vector) Bundle(src Vector) {
	mustSameDim(len(v), len(src))
	for i, s := range src {
		v[i] += s
	}
}

// BundleScaled accumulates alpha*src into v, the weighted bundling used by
// OnlineHD model updates (W <- W + lr*(1-delta)*H).
//
//hd:mutates
func (v Vector) BundleScaled(src Vector, alpha float64) {
	mustSameDim(len(v), len(src))
	for i, s := range src {
		v[i] += alpha * s
	}
}

// BundleAll sums vs into a fresh hypervector. It returns nil for no input.
func BundleAll(vs ...Vector) Vector {
	if len(vs) == 0 {
		return nil
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		out.Bundle(v)
	}
	return out
}

// Bind returns the element-wise product a*b, creating a hypervector
// quasi-orthogonal to both inputs (delta(R, V1) ~ 0 for random inputs).
func Bind(a, b Vector) Vector {
	mustSameDim(len(a), len(b))
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Permute returns v circularly shifted right by k positions (k may be
// negative or exceed the dimension). Permutation encodes sequence order.
func Permute(v Vector, k int) Vector {
	n := len(v)
	if n == 0 {
		return Vector{}
	}
	k = ((k % n) + n) % n
	out := make(Vector, n)
	copy(out[k:], v[:n-k])
	copy(out[:k], v[n-k:])
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	mustSameDim(len(a), len(b))
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the similarity metric of the paper's Eq. 1,
// delta(V1,V2) = V1.V2 / (||V1|| ||V2||); zero vectors give 0.
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales v to unit norm in place; the zero vector is unchanged.
//
//hd:mutates
func (v Vector) Normalize() {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
}

// Scale multiplies every component by alpha in place.
//
//hd:mutates
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Quantize returns the bipolar sign vector of v (0 maps to +1), the usual
// step when moving a trained float model onto binary hardware.
func (v Vector) Quantize() Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		if x < 0 {
			out[i] = -1
		} else {
			out[i] = 1
		}
	}
	return out
}

// Slice returns the subspace view v[lo:hi] without copying. BoostHD weak
// learners operate on such contiguous dimension segments (Figure 1).
func (v Vector) Slice(lo, hi int) Vector {
	if lo < 0 || hi > len(v) || lo >= hi {
		panic(fmt.Sprintf("hdc: invalid slice [%d:%d) of dim %d", lo, hi, len(v)))
	}
	return v[lo:hi]
}

func mustSameDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("hdc: dimension mismatch %d != %d", a, b))
	}
}
