package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBundle(t *testing.T) {
	a := Vector{1, 2, 3}
	a.Bundle(Vector{1, 1, 1})
	if a[0] != 2 || a[1] != 3 || a[2] != 4 {
		t.Errorf("Bundle = %v", a)
	}
}

func TestBundleScaled(t *testing.T) {
	a := Vector{1, 0}
	a.BundleScaled(Vector{2, 2}, 0.5)
	if a[0] != 2 || a[1] != 1 {
		t.Errorf("BundleScaled = %v", a)
	}
}

func TestBundleDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	a := Vector{1}
	a.Bundle(Vector{1, 2})
}

func TestBundleAll(t *testing.T) {
	got := BundleAll(Vector{1, 1}, Vector{2, 2}, Vector{3, 3})
	if got[0] != 6 || got[1] != 6 {
		t.Errorf("BundleAll = %v", got)
	}
	if BundleAll() != nil {
		t.Error("BundleAll() should be nil")
	}
}

func TestBind(t *testing.T) {
	r := Bind(Vector{1, -1, 2}, Vector{3, 3, -1})
	if r[0] != 3 || r[1] != -3 || r[2] != -2 {
		t.Errorf("Bind = %v", r)
	}
}

func TestBindOrthogonality(t *testing.T) {
	// delta(bind(a,b), a) ~ 0 for random bipolar hypervectors.
	rng := rand.New(rand.NewSource(9))
	a := RandomBipolar(8192, rng)
	b := RandomBipolar(8192, rng)
	r := Bind(a, b)
	if c := Cosine(r, a); math.Abs(c) > 0.05 {
		t.Errorf("bound vector not orthogonal to input: cosine = %v", c)
	}
	if c := Cosine(r, b); math.Abs(c) > 0.05 {
		t.Errorf("bound vector not orthogonal to input: cosine = %v", c)
	}
}

func TestPermute(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	got := Permute(v, 1)
	want := Vector{4, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Permute(1) = %v, want %v", got, want)
		}
	}
	// Negative and wrapping shifts.
	got = Permute(v, -1)
	want = Vector{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Permute(-1) = %v, want %v", got, want)
		}
	}
	got = Permute(v, 5)
	want = Vector{4, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Permute(5) = %v, want %v", got, want)
		}
	}
	if len(Permute(Vector{}, 3)) != 0 {
		t.Error("Permute of empty should be empty")
	}
}

func TestPermutePreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := RandomGaussian(256, rng)
	if !almostEq(Norm(v), Norm(Permute(v, 13)), 1e-12) {
		t.Error("permutation must preserve norm")
	}
}

func TestCosine(t *testing.T) {
	if !almostEq(Cosine(Vector{1, 0}, Vector{2, 0}), 1, 1e-12) {
		t.Error("parallel vectors should have cosine 1")
	}
	if Cosine(Vector{0, 0}, Vector{1, 1}) != 0 {
		t.Error("zero vector cosine should be 0")
	}
}

func TestRandomOrthogonality(t *testing.T) {
	// Random hypervectors in high dimension are quasi-orthogonal — the
	// founding property of HDC.
	rng := rand.New(rand.NewSource(3))
	a := RandomGaussian(8192, rng)
	b := RandomGaussian(8192, rng)
	if c := Cosine(a, b); math.Abs(c) > 0.05 {
		t.Errorf("random hypervectors should be quasi-orthogonal, cosine = %v", c)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEq(Norm(v), 1, 1e-12) {
		t.Errorf("norm after Normalize = %v", Norm(v))
	}
	z := Vector{0, 0}
	z.Normalize() // must not panic or produce NaN
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector should stay zero")
	}
}

func TestScaleQuantize(t *testing.T) {
	v := Vector{-2, 0, 5}
	v.Scale(2)
	if v[0] != -4 || v[2] != 10 {
		t.Errorf("Scale = %v", v)
	}
	q := v.Quantize()
	if q[0] != -1 || q[1] != 1 || q[2] != 1 {
		t.Errorf("Quantize = %v", q)
	}
}

func TestSlice(t *testing.T) {
	v := Vector{0, 1, 2, 3, 4, 5}
	s := v.Slice(2, 4)
	if len(s) != 2 || s[0] != 2 || s[1] != 3 {
		t.Errorf("Slice = %v", s)
	}
	// Views alias the parent storage — BoostHD partitioning relies on it.
	s[0] = 99
	if v[2] != 99 {
		t.Error("Slice must be a view, not a copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid slice")
		}
	}()
	v.Slice(4, 2)
}

func TestBundlePreservesSimilarity(t *testing.T) {
	// A bundle remains similar to each of its components.
	rng := rand.New(rand.NewSource(4))
	a := RandomGaussian(4096, rng)
	b := RandomGaussian(4096, rng)
	s := BundleAll(a, b)
	if Cosine(s, a) < 0.5 || Cosine(s, b) < 0.5 {
		t.Errorf("bundle should stay similar to components: %v, %v",
			Cosine(s, a), Cosine(s, b))
	}
}

// Property: bundling is commutative.
func TestBundleCommutativeQuick(t *testing.T) {
	f := func(a, b [16]float64) bool {
		x := Vector(a[:]).Clone()
		y := Vector(b[:]).Clone()
		ab := BundleAll(x, y)
		ba := BundleAll(y, x)
		for i := range ab {
			if math.IsNaN(ab[i]) && math.IsNaN(ba[i]) {
				continue
			}
			if ab[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: binding with an all-ones vector is the identity.
func TestBindIdentityQuick(t *testing.T) {
	f := func(a [16]float64) bool {
		ones := make(Vector, 16)
		for i := range ones {
			ones[i] = 1
		}
		r := Bind(a[:], ones)
		for i := range r {
			if math.IsNaN(a[i]) {
				continue
			}
			if r[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: permutation by d (full cycle) is the identity.
func TestPermuteFullCycleQuick(t *testing.T) {
	f := func(a [24]float64, kRaw uint8) bool {
		v := Vector(a[:])
		k := int(kRaw)
		p := Permute(Permute(v, k), -k)
		for i := range v {
			if math.IsNaN(v[i]) {
				continue
			}
			if p[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
