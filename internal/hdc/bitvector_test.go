package hdc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBitVector(t *testing.T) {
	b := NewBitVector(100)
	if b.N != 100 || len(b.Words) != 2 {
		t.Errorf("unexpected shape: N=%d words=%d", b.N, len(b.Words))
	}
	if b.Ones() != 0 {
		t.Error("new bitvector should be all zeros")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive dimension")
		}
	}()
	NewBitVector(0)
}

func TestSetGet(t *testing.T) {
	b := NewBitVector(130)
	b.Set(0, true)
	b.Set(64, true)
	b.Set(129, true)
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if b.Ones() != 3 {
		t.Errorf("Ones = %d, want 3", b.Ones())
	}
	b.Set(64, false)
	if b.Get(64) {
		t.Error("bit 64 should be cleared")
	}
}

func TestRandomBitsTailMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := RandomBits(70, rng) // 6 tail bits must be zeroed
	tail := b.Words[1] >> 6
	if tail != 0 {
		t.Errorf("tail bits not masked: %x", tail)
	}
	if b.Ones() > 70 {
		t.Errorf("Ones = %d exceeds dimension", b.Ones())
	}
}

func TestXORBindingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomBits(256, rng)
	b := RandomBits(256, rng)
	ab := XOR(a, b)
	// Self-inverse: (a^b)^b == a.
	back := XOR(ab, b)
	if Hamming(back, a) != 0 {
		t.Error("XOR binding must be self-inverse")
	}
	// XOR with itself is zero.
	if XOR(a, a).Ones() != 0 {
		t.Error("a^a must be zero")
	}
}

func TestHamming(t *testing.T) {
	a := NewBitVector(8)
	b := NewBitVector(8)
	a.Set(0, true)
	a.Set(3, true)
	b.Set(3, true)
	b.Set(5, true)
	if d := Hamming(a, b); d != 2 {
		t.Errorf("Hamming = %d, want 2", d)
	}
}

func TestHammingSim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomBits(4096, rng)
	if s := HammingSim(a, a); s != 1 {
		t.Errorf("self-similarity = %v, want 1", s)
	}
	comp := a.Clone()
	for i := range comp.Words {
		comp.Words[i] = ^comp.Words[i]
	}
	comp.maskTail()
	if s := HammingSim(a, comp); s != -1 {
		t.Errorf("complement similarity = %v, want -1", s)
	}
	b := RandomBits(4096, rng)
	if s := HammingSim(a, b); math.Abs(s) > 0.08 {
		t.Errorf("random vectors should be quasi-orthogonal: %v", s)
	}
}

// majorityReference is the original per-bit implementation, kept as the
// oracle for the word-parallel rewrite.
func majorityReference(vs ...*BitVector) *BitVector {
	if len(vs) == 0 {
		return nil
	}
	n := vs[0].N
	out := NewBitVector(n)
	half := len(vs) / 2
	for i := 0; i < n; i++ {
		cnt := 0
		for _, v := range vs {
			if v.Get(i) {
				cnt++
			}
		}
		if cnt > half {
			out.Set(i, true)
		}
	}
	return out
}

// TestMajorityMatchesReference drives the word-parallel Majority against
// the per-bit oracle over odd/even counts and tail-word dimensions.
func TestMajorityMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{1, 63, 64, 65, 127, 1000} {
		for _, count := range []int{1, 2, 3, 4, 7, 10, 21} {
			vs := make([]*BitVector, count)
			for i := range vs {
				vs[i] = RandomBits(n, rng)
			}
			got := Majority(vs...)
			want := majorityReference(vs...)
			for w := range want.Words {
				if got.Words[w] != want.Words[w] {
					t.Fatalf("n=%d count=%d word %d: %x != %x", n, count, w, got.Words[w], want.Words[w])
				}
			}
		}
	}
}

func TestMajority(t *testing.T) {
	a := NewBitVector(4)
	b := NewBitVector(4)
	c := NewBitVector(4)
	// bit0: 3 votes, bit1: 2 votes, bit2: 1 vote, bit3: 0 votes
	a.Set(0, true)
	b.Set(0, true)
	c.Set(0, true)
	a.Set(1, true)
	b.Set(1, true)
	a.Set(2, true)
	m := Majority(a, b, c)
	if !m.Get(0) || !m.Get(1) || m.Get(2) || m.Get(3) {
		t.Errorf("Majority bits = %v %v %v %v", m.Get(0), m.Get(1), m.Get(2), m.Get(3))
	}
	if Majority() != nil {
		t.Error("Majority() should be nil")
	}
}

func TestMajorityRetainsSimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vs := make([]*BitVector, 5)
	for i := range vs {
		vs[i] = RandomBits(4096, rng)
	}
	m := Majority(vs...)
	for i, v := range vs {
		if s := HammingSim(m, v); s < 0.2 {
			t.Errorf("majority should stay similar to component %d: %v", i, s)
		}
	}
}

func TestFromVectorToVectorRoundTrip(t *testing.T) {
	v := Vector{-1.5, 2.3, -0.1, 0}
	b := FromVector(v)
	if b.Get(0) || !b.Get(1) || b.Get(2) || !b.Get(3) {
		t.Error("FromVector thresholding wrong")
	}
	back := b.ToVector()
	want := Vector{-1, 1, -1, 1}
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("ToVector = %v, want %v", back, want)
		}
	}
}

// Property: Hamming distance is a metric (symmetry + identity + triangle).
func TestHammingMetricQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seedA, seedB, seedC int64) bool {
		n := 64 + rng.Intn(100)
		a := RandomBits(n, rand.New(rand.NewSource(seedA)))
		b := RandomBits(n, rand.New(rand.NewSource(seedB)))
		c := RandomBits(n, rand.New(rand.NewSource(seedC)))
		if Hamming(a, b) != Hamming(b, a) {
			return false
		}
		if Hamming(a, a) != 0 {
			return false
		}
		return Hamming(a, c) <= Hamming(a, b)+Hamming(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: XOR never changes the dimension and Ones stays within [0, N].
func TestXOROnesBoundsQuick(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		a := RandomBits(n, rand.New(rand.NewSource(seedA)))
		b := RandomBits(n, rand.New(rand.NewSource(seedB)))
		x := XOR(a, b)
		return x.N == n && x.Ones() >= 0 && x.Ones() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
