package hdc

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// BitVector is a packed binary hypervector: component i is bit i%64 of
// word i/64. Binary hypervectors trade precision for the word-parallel
// XOR/popcount operations wearable-class hardware implements natively.
type BitVector struct {
	N     int // logical dimensionality
	Words []uint64
}

// NewBitVector returns an all-zero binary hypervector of dimension n.
func NewBitVector(n int) *BitVector {
	if n <= 0 {
		panic(fmt.Sprintf("hdc: invalid bitvector dimension %d", n))
	}
	return &BitVector{N: n, Words: make([]uint64, (n+63)/64)}
}

// RandomBits returns a binary hypervector with i.i.d. uniform bits.
func RandomBits(n int, rng *rand.Rand) *BitVector {
	b := NewBitVector(n)
	for i := range b.Words {
		b.Words[i] = rng.Uint64()
	}
	b.maskTail()
	return b
}

// maskTail clears the unused bits of the final word so popcounts stay
// consistent regardless of how the words were produced.
func (b *BitVector) maskTail() {
	if rem := b.N % 64; rem != 0 {
		b.Words[len(b.Words)-1] &= (1 << uint(rem)) - 1
	}
}

// Get reports bit i.
func (b *BitVector) Get(i int) bool {
	return b.Words[i/64]&(1<<uint(i%64)) != 0
}

// Set assigns bit i.
func (b *BitVector) Set(i int, v bool) {
	if v {
		b.Words[i/64] |= 1 << uint(i%64)
	} else {
		b.Words[i/64] &^= 1 << uint(i%64)
	}
}

// Clone returns a deep copy of b.
func (b *BitVector) Clone() *BitVector {
	out := &BitVector{N: b.N, Words: make([]uint64, len(b.Words))}
	copy(out.Words, b.Words)
	return out
}

// XOR returns a^b, the binary binding operator.
func XOR(a, b *BitVector) *BitVector {
	mustSameDim(a.N, b.N)
	out := a.Clone()
	for i, w := range b.Words {
		out.Words[i] ^= w
	}
	return out
}

// Hamming returns the number of differing bits between a and b.
func Hamming(a, b *BitVector) int {
	mustSameDim(a.N, b.N)
	d := 0
	for i, w := range a.Words {
		d += bits.OnesCount64(w ^ b.Words[i])
	}
	return d
}

// HammingSim returns 1 - 2*Hamming/N, the binary analogue of cosine
// similarity: +1 for identical vectors, -1 for complements, ~0 for
// independent random vectors.
func HammingSim(a, b *BitVector) float64 {
	return 1 - 2*float64(Hamming(a, b))/float64(a.N)
}

// Ones returns the number of set bits.
func (b *BitVector) Ones() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Majority bundles binary hypervectors by per-bit majority vote; ties
// (possible only for an even count) break toward zero. It returns nil for
// no input.
//
// The vote runs word-parallel: for each 64-bit word position the set bits
// of every input word are drained with popcount-style trailing-zero
// extraction into 64 lane counters, then the winning lanes are packed back
// into the output word. No per-bit Get/Set calls, and lanes that no input
// sets cost nothing.
func Majority(vs ...*BitVector) *BitVector {
	if len(vs) == 0 {
		return nil
	}
	n := vs[0].N
	for _, v := range vs[1:] {
		mustSameDim(n, v.N)
	}
	out := NewBitVector(n)
	half := uint32(len(vs) / 2)
	var cnt [64]uint32
	for w := range out.Words {
		for i := range cnt {
			cnt[i] = 0
		}
		for _, v := range vs {
			word := v.Words[w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				cnt[b]++
				word &= word - 1
			}
		}
		var res uint64
		for b, c := range cnt {
			if c > half {
				res |= 1 << uint(b)
			}
		}
		out.Words[w] = res
	}
	return out
}

// FromVector thresholds a real hypervector at 0 into a binary one
// (negative components become 0-bits, the rest 1-bits).
func FromVector(v Vector) *BitVector {
	b := NewBitVector(len(v))
	for i, x := range v {
		if x >= 0 {
			b.Set(i, true)
		}
	}
	return b
}

// ToVector expands b into a bipolar real hypervector (+1 for set bits).
func (b *BitVector) ToVector() Vector {
	v := make(Vector, b.N)
	for i := range v {
		if b.Get(i) {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	return v
}
