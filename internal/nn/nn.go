// Package nn implements the DNN baseline of Table I: a fully connected
// network with the paper's architecture — hidden layers [2048, 1024, 512],
// ReLU activations, dropout, softmax cross-entropy loss, learning rate
// 0.001 — trained with mini-batch Adam (SGD available). The paper's input
// is the same windowed statistical feature vector the other models see, so
// the "convolutional" front-end degenerates to dense layers.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Optimizer selects the weight-update rule.
type Optimizer int

const (
	// Adam with standard beta1/beta2.
	Adam Optimizer = iota
	// SGD with constant learning rate.
	SGD
)

// Config controls network construction and training.
type Config struct {
	Hidden    []int   // hidden layer widths (paper: 2048, 1024, 512)
	Classes   int     // output width
	LR        float64 // paper: 0.001
	Dropout   float64 // drop probability on hidden activations
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	Seed      int64
}

// DefaultConfig returns the paper's DNN hyperparameters. Training cost in
// pure Go is substantial at full width; benchmarks that only need the
// architecture's relative behaviour may shrink Hidden proportionally.
func DefaultConfig(classes int) Config {
	return Config{
		Hidden:    []int{2048, 1024, 512},
		Classes:   classes,
		LR:        0.001,
		Dropout:   0.2,
		Epochs:    10,
		BatchSize: 32,
		Optimizer: Adam,
		Seed:      1,
	}
}

// dense is one fully connected layer with Adam moment buffers.
type dense struct {
	in, out int
	w       []float64 // out x in
	b       []float64
	// Adam state
	mw, vw []float64
	mb, vb []float64
}

func newDense(in, out int, rng *rand.Rand) *dense {
	d := &dense{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		mw: make([]float64, in*out),
		vw: make([]float64, in*out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	// He initialization for ReLU stacks.
	scale := math.Sqrt(2 / float64(in))
	for i := range d.w {
		d.w[i] = rng.NormFloat64() * scale
	}
	return d
}

func (d *dense) forward(x, out []float64) {
	for o := 0; o < d.out; o++ {
		row := d.w[o*d.in : (o+1)*d.in]
		s := d.b[o]
		for j, xv := range x {
			s += row[j] * xv
		}
		out[o] = s
	}
}

// Model is a trained multilayer perceptron.
type Model struct {
	Cfg      Config
	Features int
	layers   []*dense
	step     int
}

// New builds an untrained network for the given input width.
func New(features int, cfg Config) (*Model, error) {
	if features <= 0 {
		return nil, fmt.Errorf("nn: invalid feature count %d", features)
	}
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("nn: need >= 2 classes, got %d", cfg.Classes)
	}
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be positive, got %v", cfg.LR)
	}
	if cfg.Dropout < 0 || cfg.Dropout >= 1 {
		return nil, fmt.Errorf("nn: dropout %v outside [0,1)", cfg.Dropout)
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, Features: features}
	widths := append([]int{features}, cfg.Hidden...)
	widths = append(widths, cfg.Classes)
	for i := 0; i+1 < len(widths); i++ {
		if widths[i+1] <= 0 {
			return nil, fmt.Errorf("nn: invalid layer width %d", widths[i+1])
		}
		m.layers = append(m.layers, newDense(widths[i], widths[i+1], rng))
	}
	return m, nil
}

// Fit trains the network with softmax cross-entropy.
func (m *Model) Fit(X [][]float64, y []int) error {
	n := len(X)
	if n == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	if len(y) != n {
		return fmt.Errorf("nn: %d rows vs %d labels", n, len(y))
	}
	for i, l := range y {
		if l < 0 || l >= m.Cfg.Classes {
			return fmt.Errorf("nn: label %d at %d outside [0,%d)", l, i, m.Cfg.Classes)
		}
		if len(X[i]) != m.Features {
			return fmt.Errorf("nn: row %d has %d features, want %d", i, len(X[i]), m.Features)
		}
	}
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 31337))
	L := len(m.layers)
	// Per-layer activation and delta buffers.
	acts := make([][]float64, L+1)
	deltas := make([][]float64, L)
	masks := make([][]bool, L)
	for l, d := range m.layers {
		acts[l+1] = make([]float64, d.out)
		deltas[l] = make([]float64, d.out)
		masks[l] = make([]bool, d.out)
	}
	// Gradient accumulators per batch.
	gw := make([][]float64, L)
	gb := make([][]float64, L)
	for l, d := range m.layers {
		gw[l] = make([]float64, len(d.w))
		gb[l] = make([]float64, len(d.b))
	}

	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		order := rng.Perm(n)
		for start := 0; start < n; start += m.Cfg.BatchSize {
			end := start + m.Cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			for l := range gw {
				for i := range gw[l] {
					gw[l][i] = 0
				}
				for i := range gb[l] {
					gb[l][i] = 0
				}
			}
			for _, i := range batch {
				m.forwardTrain(X[i], acts, masks, rng)
				// Softmax + cross-entropy gradient at the output.
				out := acts[L]
				probs := make([]float64, len(out))
				softmax(out, probs)
				for k := range probs {
					deltas[L-1][k] = probs[k]
				}
				deltas[L-1][y[i]] -= 1
				// Backprop through hidden layers.
				for l := L - 1; l >= 0; l-- {
					d := m.layers[l]
					in := acts[l]
					for o := 0; o < d.out; o++ {
						g := deltas[l][o]
						if g == 0 {
							continue
						}
						row := gw[l][o*d.in : (o+1)*d.in]
						for j, xv := range in {
							row[j] += g * xv
						}
						gb[l][o] += g
					}
					if l > 0 {
						prev := deltas[l-1]
						for j := range prev {
							prev[j] = 0
						}
						for o := 0; o < d.out; o++ {
							g := deltas[l][o]
							if g == 0 {
								continue
							}
							row := d.w[o*d.in : (o+1)*d.in]
							for j := range prev {
								prev[j] += g * row[j]
							}
						}
						// ReLU + inverted-dropout derivative: dropped
						// units pass no gradient, kept units carry the
						// same 1/keep scale as the forward pass.
						keep := 1 - m.Cfg.Dropout
						for j := range prev {
							if acts[l][j] <= 0 || !masks[l-1][j] {
								prev[j] = 0
							} else if m.Cfg.Dropout > 0 {
								prev[j] /= keep
							}
						}
					}
				}
			}
			m.step++
			m.applyGradients(gw, gb, float64(len(batch)))
		}
	}
	return nil
}

// forwardTrain runs a forward pass with ReLU + inverted dropout on hidden
// layers, recording activations and dropout masks for backprop.
func (m *Model) forwardTrain(x []float64, acts [][]float64, masks [][]bool, rng *rand.Rand) {
	acts[0] = x
	L := len(m.layers)
	keep := 1 - m.Cfg.Dropout
	for l, d := range m.layers {
		d.forward(acts[l], acts[l+1])
		if l == L-1 {
			break // output layer: linear (softmax applied by caller)
		}
		a := acts[l+1]
		for j := range a {
			if a[j] < 0 {
				a[j] = 0
			}
			masks[l][j] = true
			if m.Cfg.Dropout > 0 {
				if rng.Float64() < m.Cfg.Dropout {
					a[j] = 0
					masks[l][j] = false
				} else {
					a[j] /= keep
				}
			}
		}
	}
}

func (m *Model) applyGradients(gw, gb [][]float64, batchSize float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	lr := m.Cfg.LR
	t := float64(m.step)
	for l, d := range m.layers {
		switch m.Cfg.Optimizer {
		case SGD:
			for i := range d.w {
				d.w[i] -= lr * gw[l][i] / batchSize
			}
			for i := range d.b {
				d.b[i] -= lr * gb[l][i] / batchSize
			}
		default: // Adam
			bc1 := 1 - math.Pow(beta1, t)
			bc2 := 1 - math.Pow(beta2, t)
			for i := range d.w {
				g := gw[l][i] / batchSize
				d.mw[i] = beta1*d.mw[i] + (1-beta1)*g
				d.vw[i] = beta2*d.vw[i] + (1-beta2)*g*g
				d.w[i] -= lr * (d.mw[i] / bc1) / (math.Sqrt(d.vw[i]/bc2) + eps)
			}
			for i := range d.b {
				g := gb[l][i] / batchSize
				d.mb[i] = beta1*d.mb[i] + (1-beta1)*g
				d.vb[i] = beta2*d.vb[i] + (1-beta2)*g*g
				d.b[i] -= lr * (d.mb[i] / bc1) / (math.Sqrt(d.vb[i]/bc2) + eps)
			}
		}
	}
}

func softmax(f, out []float64) {
	maxV := f[0]
	for _, v := range f[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range f {
		out[i] = math.Exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

// Logits runs an inference forward pass (no dropout) for one row.
func (m *Model) Logits(x []float64) ([]float64, error) {
	if len(x) != m.Features {
		return nil, fmt.Errorf("nn: row has %d features, want %d", len(x), m.Features)
	}
	cur := x
	for l, d := range m.layers {
		next := make([]float64, d.out)
		d.forward(cur, next)
		if l < len(m.layers)-1 {
			for j := range next {
				if next[j] < 0 {
					next[j] = 0
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// Predict returns the argmax class for one row.
func (m *Model) Predict(x []float64) (int, error) {
	logits, err := m.Logits(x)
	if err != nil {
		return 0, err
	}
	best := 0
	for k := 1; k < len(logits); k++ {
		if logits[k] > logits[best] {
			best = k
		}
	}
	return best, nil
}

// PredictBatch classifies each row of X.
func (m *Model) PredictBatch(X [][]float64) ([]int, error) {
	out := make([]int, len(X))
	for i, x := range X {
		p, err := m.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("nn: row %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// Evaluate returns plain accuracy on a labeled set.
func (m *Model) Evaluate(X [][]float64, y []int) (float64, error) {
	if len(X) != len(y) || len(y) == 0 {
		return 0, fmt.Errorf("nn: bad evaluation set")
	}
	pred, err := m.PredictBatch(X)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y)), nil
}

// Weights exposes the flat weight slices of every layer. The aliasing is
// the method's contract: fault injection flips bits of the live weights
// in place, and the DNN baseline is only ever mutated single-threaded.
func (m *Model) Weights() [][]float64 {
	out := make([][]float64, len(m.layers))
	for i, d := range m.layers {
		out[i] = d.w
	}
	//hdlint:ignore snapshotalias exposing live weight memory is the contract; fault injection mutates in place
	return out
}

// Clone deep-copies the model's parameters (not the Adam state).
func (m *Model) Clone() *Model {
	out := &Model{Cfg: m.Cfg, Features: m.Features, step: m.step}
	for _, d := range m.layers {
		nd := &dense{in: d.in, out: d.out,
			w: append([]float64(nil), d.w...), b: append([]float64(nil), d.b...),
			mw: make([]float64, len(d.mw)), vw: make([]float64, len(d.vw)),
			mb: make([]float64, len(d.mb)), vb: make([]float64, len(d.vb)),
		}
		out.layers = append(out.layers, nd)
	}
	return out
}
