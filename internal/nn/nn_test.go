package nn

import (
	"math"
	"math/rand"
	"testing"
)

func blobs(n int, noise float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 3
		y[i] = c
		X[i] = make([]float64, 6)
		for j := range X[i] {
			X[i][j] = noise * rng.NormFloat64()
		}
		X[i][c] += 2
	}
	return X, y
}

// smallConfig keeps tests fast while exercising the full code path.
func smallConfig() Config {
	return Config{
		Hidden:    []int{32, 16},
		Classes:   3,
		LR:        0.003,
		Dropout:   0.1,
		Epochs:    15,
		BatchSize: 16,
		Optimizer: Adam,
		Seed:      1,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, smallConfig()); err == nil {
		t.Error("expected feature error")
	}
	bad := smallConfig()
	bad.Classes = 1
	if _, err := New(4, bad); err == nil {
		t.Error("expected classes error")
	}
	bad = smallConfig()
	bad.LR = 0
	if _, err := New(4, bad); err == nil {
		t.Error("expected lr error")
	}
	bad = smallConfig()
	bad.Dropout = 1
	if _, err := New(4, bad); err == nil {
		t.Error("expected dropout error")
	}
	bad = smallConfig()
	bad.Hidden = []int{0}
	if _, err := New(4, bad); err == nil {
		t.Error("expected layer-width error")
	}
}

func TestFitValidation(t *testing.T) {
	m, err := New(6, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Error("expected empty error")
	}
	if err := m.Fit([][]float64{{1, 2, 3, 4, 5, 6}}, []int{0, 1}); err == nil {
		t.Error("expected mismatch error")
	}
	if err := m.Fit([][]float64{{1}}, []int{0}); err == nil {
		t.Error("expected feature-length error")
	}
	if err := m.Fit([][]float64{{1, 2, 3, 4, 5, 6}}, []int{9}); err == nil {
		t.Error("expected label error")
	}
}

func TestMLPLearnsBlobs(t *testing.T) {
	X, y := blobs(300, 0.5, 2)
	m, err := New(6, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X[:200], y[:200]); err != nil {
		t.Fatal(err)
	}
	acc, err := m.Evaluate(X[200:], y[200:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("mlp accuracy %v, want >= 0.9", acc)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// XOR needs the hidden nonlinearity — a linear model cannot solve it.
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0}
	// Replicate to form a training set.
	var bx [][]float64
	var by []int
	for i := 0; i < 50; i++ {
		bx = append(bx, X...)
		by = append(by, y...)
	}
	cfg := Config{Hidden: []int{16}, Classes: 2, LR: 0.01, Epochs: 60, BatchSize: 8, Optimizer: Adam, Seed: 3}
	m, err := New(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(bx, by); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		p, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if p != y[i] {
			t.Errorf("XOR(%v) = %d, want %d", x, p, y[i])
		}
	}
}

func TestSGDOptimizer(t *testing.T) {
	X, y := blobs(240, 0.4, 4)
	cfg := smallConfig()
	cfg.Optimizer = SGD
	cfg.LR = 0.05
	cfg.Dropout = 0
	cfg.Epochs = 30
	m, err := New(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	acc, _ := m.Evaluate(X, y)
	if acc < 0.85 {
		t.Errorf("sgd accuracy %v, want >= 0.85", acc)
	}
}

func TestLogitsFinite(t *testing.T) {
	X, y := blobs(60, 0.4, 5)
	m, err := New(6, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	l, err := m.Logits(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 3 {
		t.Fatalf("logits len = %d", len(l))
	}
	for _, v := range l {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite logits")
		}
	}
	if _, err := m.Logits([]float64{1}); err == nil {
		t.Error("expected feature-length error")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	X, y := blobs(90, 0.4, 6)
	run := func() []int {
		m, err := New(6, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		p, _ := m.PredictBatch(X)
		return p
	}
	p1, p2 := run(), run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed must give identical networks")
		}
	}
}

func TestCloneAndWeights(t *testing.T) {
	m, err := New(6, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	if len(w) != 3 { // 2 hidden + output
		t.Fatalf("layers = %d, want 3", len(w))
	}
	cl := m.Clone()
	cl.Weights()[0][0] += 100
	if m.Weights()[0][0] == cl.Weights()[0][0] {
		t.Error("clone shares weight storage")
	}
}

func TestDropoutInferenceIsDeterministic(t *testing.T) {
	X, y := blobs(60, 0.4, 7)
	cfg := smallConfig()
	cfg.Dropout = 0.5
	m, err := New(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p1, _ := m.Predict(X[0])
	p2, _ := m.Predict(X[0])
	if p1 != p2 {
		t.Error("inference must not apply dropout")
	}
}
