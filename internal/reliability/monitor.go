// Package reliability is the runtime integrity subsystem for serving
// BoostHD models: it turns the paper's offline robustness claim — the
// boosted ensemble tolerates memory bit-flips — into a live serving
// guarantee. A Monitor watches the model memory behind a serve.Server
// through three mechanisms layered from cheap to semantic:
//
//  1. Detection. Every weak learner's memory is signed: XOR-fold parity
//     words plus position-mixed digests over the packed-binary sign and
//     mask planes, and checksums over the float class hypervectors. A
//     background scrubber re-walks the memory on a period and compares.
//     A small held-out canary set additionally scores each learner solo,
//     catching accuracy collapse a memory checksum cannot attribute
//     (e.g. corruption that predates quantization, or drift).
//
//  2. Response. Corrupted or collapsed learners are quarantined by
//     zeroing their vote: an alpha-masked view of the model is built
//     (scoring skips zero-alpha learners entirely, so the corrupted
//     memory is never read) and installed through the server's atomic
//     engine swap — requests never see a torn model, and the ensemble
//     redundancy the paper sells is exactly what keeps accuracy up
//     while degraded.
//
//  3. Repair. Quarantined learners are restored: plane-only corruption
//     on a packed-binary backend re-thresholds from the intact float
//     memory; float corruption restores the learner's class vectors
//     from the last verified checkpoint; with a trainer attached, a
//     full hot retrain over its sample buffer rebuilds everything. A
//     repaired learner is re-signed, canary-verified, and un-masked.
package reliability

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"boosthd/internal/boosthd"
	"boosthd/internal/infer"
	"boosthd/internal/serve"
)

// Config tunes a Monitor.
type Config struct {
	// ScrubEvery is the background scrub (and auto-repair) period; zero
	// means no background loop — Scrub/Repair are driven manually.
	ScrubEvery time.Duration
	// QuarantineDrop is the absolute canary-accuracy drop below a
	// learner's signed baseline that quarantines it. Zero selects the
	// 0.15 default — exact-zero tolerance is not expressible (and would
	// quarantine on ordinary canary noise; use a small positive value).
	QuarantineDrop float64
	// CheckpointPath names the last verified checkpoint OF THE SERVING
	// MODEL (a float ensemble written by Model.Save): the repair source
	// for corrupted float class memory, and — for a frozen binary
	// snapshot, which has no float memory at all — the full-reload
	// source. Empty disables checkpoint repair. If the serving engine
	// later changes hands (operator swap, trainer retrain), the
	// checkpoint no longer describes the serving model and checkpoint
	// repair disarms automatically; re-arm with SetCheckpoint.
	CheckpointPath string
	// Trainer, when set, is the fallback repair source: a corrupted
	// learner with no checkpoint to restore from triggers a targeted
	// refit through the trainer's existing hot-retrain path.
	Trainer serve.Trainer
	// TrustVersioned treats a learner whose version counter advanced
	// since signing as legitimately mutated (streaming online updates,
	// in-place fits): it is re-signed instead of flagged. Leave false
	// for a static serving model, where any mutation is corruption —
	// fault injection through the locked paths bumps versions too, and
	// strict mode catches it. The canary check guards both modes.
	TrustVersioned bool
}

func (c Config) withDefaults() Config {
	if c.QuarantineDrop == 0 {
		c.QuarantineDrop = 0.15
	}
	return c
}

// entry is one learner's row in the health ledger.
type entry struct {
	sig         learnerSig
	quarantined bool
	// canarySuspect marks a quarantine the canary contributed to: the
	// learner's memory cannot be trusted even where its signatures
	// agree (a TrustVersioned deployment re-signs legitimate-looking
	// mutations), so repair must restore it from an external source
	// rather than re-threshold in place.
	canarySuspect bool

	integrityFaults uint64
	canaryFaults    uint64
	repairs         uint64

	baseline  float64 // solo canary accuracy at signing
	last      float64 // most recent solo canary accuracy
	hasCanary bool
}

// ScrubReport describes one scrub pass.
type ScrubReport struct {
	// Adopted is true when the serving engine changed hands since the
	// last pass (operator swap, trainer retrain): the monitor re-signed
	// the new model instead of scrubbing signatures it no longer holds.
	Adopted bool `json:"adopted,omitempty"`
	// IntegrityFaults and CanaryFaults list learners flagged this pass.
	IntegrityFaults []int `json:"integrity_faults,omitempty"`
	CanaryFaults    []int `json:"canary_faults,omitempty"`
	// Quarantined lists learners newly quarantined this pass.
	Quarantined []int `json:"quarantined,omitempty"`
	// Swapped is true when the quarantine mask changed and a rebuilt
	// engine was installed.
	Swapped bool    `json:"swapped,omitempty"`
	TookMS  float64 `json:"took_ms"`
}

// RepairReport describes one repair pass.
type RepairReport struct {
	Repaired []int   `json:"repaired,omitempty"`
	Failed   []int   `json:"failed,omitempty"`
	Source   string  `json:"source,omitempty"` // rethreshold, checkpoint, trainer
	Swapped  bool    `json:"swapped,omitempty"`
	Reason   string  `json:"reason,omitempty"` // why nothing was repaired
	TookMS   float64 `json:"took_ms"`
}

// Monitor owns the reliability loop for one serve.Server. All methods
// are safe for concurrent use. Two locks split responsiveness from
// serialization: passMu serializes whole Scrub/Repair passes (so the
// background loop and manual calls never interleave), while mu guards
// the monitor state and is RELEASED around the slow repair steps
// (checkpoint load, trainer retrain) — /healthz and /reliability keep
// answering while the monitor is mid-heal.
type Monitor struct {
	cfg Config
	srv *serve.Server

	passMu sync.Mutex // serializes Scrub/Repair passes end to end

	mu          sync.Mutex
	cur         *infer.Engine  // engine the monitor installed or signed last
	base        *boosthd.Model // model carrying the true (unmasked) alphas
	ledger      []*entry
	masked      []bool
	canaryX     [][]float64
	canaryY     []int
	lastScrubMS float64
	lastErr     string
	// autoStuck marks a repair attempt that restored nothing while
	// something stayed quarantined: the background loop stops retrying
	// (each retry would redo the full re-threshold + canary pass and
	// inflate the failure counters) until a scrub changes the picture —
	// a new quarantine, an adoption, or a manual Repair.
	autoStuck bool
	// ckptArmed is true while CheckpointPath still describes the model
	// behind the serving engine. Adopting a foreign engine (operator
	// swap, trainer retrain) disarms it: restoring learners from a
	// checkpoint of a DIFFERENT model would graft stale weights into
	// the new one and re-sign the chimera as healthy.
	ckptArmed bool

	scrubs      atomic.Uint64
	detections  atomic.Uint64
	quarantines atomic.Uint64
	repairs     atomic.Uint64
	repairFails atomic.Uint64

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// New builds a Monitor over the model behind srv's current serving
// engine and signs it immediately: the engine installed at construction
// is the trusted baseline. When CheckpointPath is set, the checkpoint is
// opened once up front so a missing or unreadable repair source fails at
// configuration time, not mid-incident.
func New(srv *serve.Server, cfg Config) (*Monitor, error) {
	if srv == nil {
		return nil, fmt.Errorf("reliability: nil server")
	}
	cfg = cfg.withDefaults()
	if cfg.QuarantineDrop < 0 || cfg.QuarantineDrop > 1 {
		return nil, fmt.Errorf("reliability: quarantine drop %v outside [0,1]", cfg.QuarantineDrop)
	}
	if cfg.CheckpointPath != "" {
		if err := validateCheckpoint(srv.Engine(), cfg.CheckpointPath); err != nil {
			return nil, fmt.Errorf("reliability: repair checkpoint: %w", err)
		}
	}
	mo := &Monitor{cfg: cfg, srv: srv, ckptArmed: cfg.CheckpointPath != ""}
	mo.adoptLocked(srv.Engine())
	return mo, nil
}

// Config returns the resolved configuration.
func (mo *Monitor) Config() Config {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.cfg
}

// SetCheckpoint re-arms checkpoint repair with a checkpoint of the
// CURRENT serving model — the call an operator makes after swapping in
// a new checkpoint, so the monitor can restore from it again. The file
// is validated (loadable; geometry-compatible for a non-frozen model)
// before anything changes.
func (mo *Monitor) SetCheckpoint(path string) error {
	if path == "" {
		return fmt.Errorf("reliability: empty checkpoint path")
	}
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	mo.mu.Lock()
	cur := mo.cur
	mo.mu.Unlock()
	if err := validateCheckpoint(cur, path); err != nil {
		return fmt.Errorf("reliability: repair checkpoint: %w", err)
	}
	mo.mu.Lock()
	mo.cfg.CheckpointPath = path
	mo.ckptArmed = true
	mo.mu.Unlock()
	return nil
}

// validateCheckpoint verifies path is a usable repair source for the
// serving engine: loadable, and geometry-compatible with the model
// behind cur. For a frozen snapshot — whose repair unit is a wholesale
// engine reload — the comparison runs against the reloaded engine's
// model shell, so a checkpoint of a different model cannot be swapped
// into a serving contract it does not satisfy.
func validateCheckpoint(cur *infer.Engine, path string) error {
	if bin := cur.Binary(); bin != nil && bin.Frozen() {
		eng, err := serve.LoadEngine(path, "binary")
		if err != nil {
			return err
		}
		return compatible(cur.Model(), eng.Model())
	}
	m, err := loadCheckpointModel(path)
	if err != nil {
		return err
	}
	return compatible(cur.Model(), m)
}

// SetCanary installs a held-out labeled canary set and records each
// learner's solo accuracy on it as its health baseline. The rows are
// deep-copied — the canary is the reference the scrubber trusts, so no
// caller alias may reach it afterwards.
func (mo *Monitor) SetCanary(X [][]float64, y []int) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("reliability: bad canary set (%d rows, %d labels)", len(X), len(y))
	}
	// passMu keeps the install out of a running pass: Scrub and Repair
	// read the canary slices with the state lock released.
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	mo.mu.Lock()
	defer mo.mu.Unlock()
	want := mo.base.InputDim()
	classes := mo.base.Cfg.Classes
	cx := make([][]float64, len(X))
	cy := make([]int, len(y))
	for i, row := range X {
		if len(row) != want {
			return fmt.Errorf("reliability: canary row %d has %d features, model expects %d", i, len(row), want)
		}
		if y[i] < 0 || y[i] >= classes {
			return fmt.Errorf("reliability: canary label %d at row %d outside [0,%d)", y[i], i, classes)
		}
		cx[i] = append([]float64(nil), row...)
		cy[i] = y[i]
	}
	mo.canaryX, mo.canaryY = cx, cy
	return mo.baselineCanaryLocked()
}

// baselineCanaryLocked scores every learner on the canary set and
// records the accuracies as baselines.
func (mo *Monitor) baselineCanaryLocked() error {
	if len(mo.canaryX) == 0 {
		return nil
	}
	acc, err := mo.cur.EvaluateLearners(mo.canaryX, mo.canaryY)
	if err != nil {
		return fmt.Errorf("reliability: canary baseline: %w", err)
	}
	for i, e := range mo.ledger {
		e.baseline, e.last, e.hasCanary = acc[i], acc[i], true
	}
	return nil
}

// adoptLocked re-points the monitor at eng: fresh ledger, empty
// quarantine mask, signatures taken from the memory behind it, canary
// baselines recomputed when a canary set is installed. The engine is
// presumed verified — adoption is for engines installed by trusted
// actors (construction, operator swap, trainer retrain, repair).
func (mo *Monitor) adoptLocked(eng *infer.Engine) {
	mo.cur = eng
	mo.base = eng.Model()
	sigs := signModel(mo.base, eng.Binary())
	mo.ledger = make([]*entry, len(sigs))
	for i := range sigs {
		mo.ledger[i] = &entry{sig: sigs[i]}
	}
	mo.masked = make([]bool, len(sigs))
	if len(mo.canaryX) > 0 {
		if err := mo.baselineCanaryLocked(); err != nil {
			// The adopted model cannot score the canary (for example a
			// different feature width): drop the canary rather than
			// flag every learner against a baseline that no longer
			// applies, and surface the reason in Status.
			mo.canaryX, mo.canaryY = nil, nil
			for _, e := range mo.ledger {
				e.hasCanary = false
			}
			mo.lastErr = err.Error()
		}
	}
}

// verdict classifies one learner's current memory against its signature.
type verdict int

const (
	vClean verdict = iota
	vResign
	vCorrupt
)

// judge compares a freshly computed signature against the signed one.
// A version counter that moved means some locked mutation path ran: a
// deployment with live training trusts it (re-sign), a static serving
// model treats it as corruption — hardware faults do not take locks,
// but neither does anything else legitimately touch a static model.
// With versions in agreement, any parity/digest mismatch is corruption.
func judge(old, cur *learnerSig, trust bool) verdict {
	moved := (old.hasFloat && cur.version != old.version) ||
		(old.hasPlanes && cur.planeVersion != old.planeVersion)
	if moved {
		if trust {
			return vResign
		}
		return vCorrupt
	}
	if old.hasFloat && !cur.floatEqual(old) {
		return vCorrupt
	}
	if old.hasPlanes && !cur.planesEqual(old) {
		return vCorrupt
	}
	return vClean
}

// Scrub runs one detection pass: verify every healthy learner's
// integrity signatures, score the canary, quarantine what failed, and
// — when the quarantine mask changed — install a rebuilt alpha-masked
// engine through the server's atomic swap. Already-quarantined learners
// are skipped (their memory is known bad until repaired). If the
// serving engine changed hands since the last pass, the monitor adopts
// and re-signs it instead.
func (mo *Monitor) Scrub() (ScrubReport, error) {
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	start := time.Now()
	report := ScrubReport{}
	defer func() {
		report.TookMS = time.Since(start).Seconds() * 1e3
		mo.mu.Lock()
		mo.lastScrubMS = report.TookMS
		mo.mu.Unlock()
		mo.scrubs.Add(1)
	}()

	mo.mu.Lock()
	if eng := mo.srv.Engine(); eng != mo.cur {
		mo.adoptForeignLocked(eng)
		report.Adopted = true
		mo.mu.Unlock()
		return report, nil
	}
	cur, base := mo.cur, mo.base
	canaryX, canaryY := mo.canaryX, mo.canaryY
	mo.mu.Unlock()

	// The heavy reads — full-memory signing and the canary sweep — run
	// with the state lock released, so Status (and therefore /healthz
	// and /reliability) keeps answering mid-scrub. passMu keeps other
	// passes (and SetCanary/SetCheckpoint) out, and external swaps only
	// change srv.Engine(), which the next pass adopts.
	sigs := signModel(base, cur.Binary())
	var acc []float64
	var canaryErr error
	if len(canaryX) > 0 {
		acc, canaryErr = cur.EvaluateLearners(canaryX, canaryY)
	}

	mo.mu.Lock()
	defer mo.mu.Unlock()
	flagged := make([]bool, len(mo.ledger))
	for i, e := range mo.ledger {
		if e.quarantined {
			continue
		}
		switch judge(&e.sig, &sigs[i], mo.cfg.TrustVersioned) {
		case vResign:
			e.sig = sigs[i]
		case vCorrupt:
			e.integrityFaults++
			flagged[i] = true
			report.IntegrityFaults = append(report.IntegrityFaults, i)
		}
	}

	// A canary failure must not stop integrity-flagged learners from
	// being quarantined below — the error is reported after the
	// response, not instead of it.
	if canaryErr != nil {
		mo.lastErr = canaryErr.Error()
	}
	for i := 0; acc != nil && i < len(mo.ledger); i++ {
		e := mo.ledger[i]
		e.last = acc[i]
		if e.quarantined || !e.hasCanary {
			continue
		}
		if e.baseline-acc[i] > mo.cfg.QuarantineDrop {
			e.canaryFaults++
			if !flagged[i] {
				// A collapse the integrity signatures did NOT
				// explain: the memory looks intact (or was
				// legitimately re-signed), so repair cannot trust
				// it and must restore from an external source.
				// When integrity already attributed the damage,
				// the signatures tell repair exactly what to
				// restore and the cheap paths stay available.
				e.canarySuspect = true
				flagged[i] = true
				report.CanaryFaults = append(report.CanaryFaults, i)
			}
		}
	}

	// Never mask the entire ensemble: an all-zero-alpha model answers
	// class 0 for every request with a 200 — strictly worse than
	// serving the least-damaged learner. Keep the flagged learner with
	// the best current canary accuracy (lowest index without a canary)
	// serving; it stays flagged in the ledger and the error surfaces in
	// Status, so the total-corruption event is loud, not silent.
	healthy := 0
	for i, e := range mo.ledger {
		if !e.quarantined && !flagged[i] {
			healthy++
		}
	}
	if healthy == 0 {
		keep, best := -1, -1.0
		for i, bad := range flagged {
			if !bad {
				continue
			}
			score := -float64(i)
			if acc != nil && mo.ledger[i].hasCanary {
				score = acc[i]
			}
			if keep == -1 || score > best {
				keep, best = i, score
			}
		}
		if keep >= 0 {
			flagged[keep] = false
			mo.ledger[keep].canarySuspect = false
			mo.lastErr = fmt.Sprintf("all %d learners corrupted; keeping learner %d unmasked so the server still votes", len(mo.ledger), keep)
		}
	}

	for i, bad := range flagged {
		if !bad {
			continue
		}
		mo.ledger[i].quarantined = true
		mo.masked[i] = true
		mo.detections.Add(1)
		mo.quarantines.Add(1)
		report.Quarantined = append(report.Quarantined, i)
	}
	if len(report.Quarantined) > 0 {
		mo.autoStuck = false // the picture changed; repair may retry
		swapped, err := mo.installMaskLocked()
		if err != nil {
			mo.lastErr = err.Error()
			return report, err
		}
		report.Swapped = swapped
	}
	if canaryErr != nil {
		return report, fmt.Errorf("reliability: canary scrub: %w", canaryErr)
	}
	return report, nil
}

// adoptForeignLocked adopts an engine installed by someone else —
// operator swap or trainer retrain. Besides the normal adoption it
// disarms checkpoint repair: the configured checkpoint described the
// previous model, and restoring its learners into the new one would
// graft stale weights (SetCheckpoint re-arms with a fresh file).
func (mo *Monitor) adoptForeignLocked(eng *infer.Engine) {
	mo.adoptLocked(eng)
	mo.autoStuck = false
	if mo.ckptArmed {
		mo.ckptArmed = false
		mo.lastErr = "serving engine changed hands; checkpoint repair disarmed until SetCheckpoint"
	}
}

// installMaskLocked rebuilds the serving engine for the current
// quarantine mask and installs it via compare-and-swap, reporting
// whether it landed. A false return means the serving engine changed
// hands mid-pass (operator checkpoint, trainer retrain): the stale
// masked view must NOT revert that swap, so nothing is installed and
// the next scrub adopts the new engine and re-evaluates.
func (mo *Monitor) installMaskLocked() (bool, error) {
	eng, err := infer.Remask(mo.cur, mo.base, mo.masked)
	if err != nil {
		return false, fmt.Errorf("reliability: %w", err)
	}
	swapped, err := mo.srv.SwapIf(mo.cur, eng)
	if err != nil {
		return false, fmt.Errorf("reliability: %w", err)
	}
	if !swapped {
		return false, nil
	}
	mo.cur = eng
	return true, nil
}

// Repair attempts to restore every quarantined learner and un-mask the
// ones that verify afterwards:
//
//   - A learner whose float memory still matches its signature only has
//     corrupted quantized planes: the binary backend re-thresholds from
//     the intact float memory (source "rethreshold").
//   - A learner whose float memory is corrupted restores its class
//     vectors from the verified checkpoint (source "checkpoint"); the
//     restore goes through the learner's locked SetClass, so serving
//     never sees a torn vector.
//   - With no checkpoint but a trainer attached, one hot retrain over
//     the trainer's buffer rebuilds the whole ensemble and the monitor
//     adopts the result (source "trainer").
//   - A frozen binary snapshot has no float memory at all: the whole
//     engine is reloaded from the checkpoint and adopted.
//
// Repaired learners are re-signed, canary-verified (when a canary set
// is installed), and removed from the quarantine mask; the rebuilt
// engine is installed through the server's atomic swap.
func (mo *Monitor) Repair() (RepairReport, error) {
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	mo.mu.Lock()
	defer mo.mu.Unlock()
	start := time.Now()
	report := RepairReport{}
	defer func() {
		report.TookMS = time.Since(start).Seconds() * 1e3
		// A pass that restored nothing while something stayed
		// quarantined cannot succeed by repetition; park the background
		// auto-repair until the picture changes.
		mo.autoStuck = len(report.Repaired) == 0 && len(report.Failed) > 0
	}()

	var quarantined []int
	for i, e := range mo.ledger {
		if e.quarantined {
			quarantined = append(quarantined, i)
		}
	}
	if len(quarantined) == 0 {
		report.Reason = "nothing quarantined"
		return report, nil
	}

	bin := mo.cur.Binary()
	if bin != nil && bin.Frozen() {
		return mo.repairFrozenLocked(report, quarantined)
	}

	// Decide per learner whether the float memory itself is damaged or
	// only the derived quantized planes are.
	sigs := signModel(mo.base, nil)
	var needFloat []int
	for _, i := range quarantined {
		if !sigs[i].floatEqual(&mo.ledger[i].sig) || mo.ledger[i].canarySuspect {
			needFloat = append(needFloat, i)
		}
	}
	report.Source = "rethreshold"

	if len(needFloat) > 0 {
		switch {
		case mo.cfg.CheckpointPath != "" && mo.ckptArmed:
			// The checkpoint read is disk I/O that can be slow at paper
			// scale: release the state lock so Status keeps answering.
			mo.mu.Unlock()
			ckpt, err := loadCheckpointModel(mo.cfg.CheckpointPath)
			mo.mu.Lock()
			if err == nil {
				err = compatible(mo.base, ckpt)
			}
			if err != nil {
				// A bad or missing checkpoint dooms only the learners
				// that needed it; plane-only learners still heal below.
				mo.failRepair(&report, needFloat, err)
				break
			}
			restored := false
			for _, i := range needFloat {
				// The checkpoint model is private to this call, so its
				// class vectors can be read directly; SetClass installs
				// a deep copy under the live learner's write lock.
				if err := mo.base.Learners[i].SetClass(ckpt.Learners[i].Class); err != nil {
					mo.failRepair(&report, []int{i}, err)
					continue
				}
				restored = true
			}
			if restored {
				report.Source = "checkpoint"
			}
		case mo.cfg.Trainer != nil:
			return mo.repairViaTrainerLocked(report, quarantined)
		default:
			// Float corruption with no restore source (never
			// configured, or disarmed because the serving model no
			// longer derives from the configured checkpoint): those
			// learners stay quarantined; plane-only learners can still
			// heal.
			mo.failRepair(&report, needFloat,
				fmt.Errorf("reliability: float memory corrupted and no armed checkpoint or trainer to restore from"))
		}
	}

	failed := map[int]bool{}
	for _, i := range report.Failed {
		failed[i] = true
	}
	if len(failed) == len(quarantined) {
		// Nothing left to heal this pass: skip the full re-threshold,
		// re-sign, and canary sweep a doomed retry would pay.
		report.Reason = "no repair source for any quarantined learner"
		return report, nil
	}

	// The verification sweep — re-threshold, re-sign, canary — walks
	// the full model memory: run it with the state lock released (like
	// Scrub's heavy reads) so Status keeps answering. passMu keeps the
	// state this block reads stable.
	cur, base := mo.cur, mo.base
	canaryX, canaryY := mo.canaryX, mo.canaryY
	mo.mu.Unlock()
	var rethErr error
	if bin != nil {
		// Re-threshold the quantized memory from the (now clean) float
		// memory: heals silent plane corruption, which never bumps
		// versions and so would survive a version-gated refresh.
		rethErr = bin.Rethreshold()
	}
	var fresh []learnerSig
	var canary []float64
	var canaryErr error
	if rethErr == nil {
		fresh = signModel(base, cur.Binary())
		if len(canaryX) > 0 {
			canary, canaryErr = cur.EvaluateLearners(canaryX, canaryY)
		}
	}
	mo.mu.Lock()
	if rethErr != nil {
		rerr := mo.failRepair(&report, quarantined, rethErr)
		return report, rerr
	}
	if canaryErr != nil {
		rerr := mo.failRepair(&report, quarantined, canaryErr)
		return report, rerr
	}
	for _, i := range quarantined {
		if failed[i] {
			continue
		}
		e := mo.ledger[i]
		if canary != nil {
			e.last = canary[i]
			if e.hasCanary && e.baseline-canary[i] > mo.cfg.QuarantineDrop {
				// Restored memory still scores collapsed: the damage is
				// upstream of what this pass can fix.
				report.Failed = append(report.Failed, i)
				mo.repairFails.Add(1)
				continue
			}
			e.baseline = canary[i]
		}
		e.sig = fresh[i]
		e.quarantined = false
		e.canarySuspect = false
		mo.masked[i] = false
		e.repairs++
		mo.repairs.Add(1)
		report.Repaired = append(report.Repaired, i)
	}
	if len(report.Repaired) > 0 {
		swapped, err := mo.installMaskLocked()
		if err != nil {
			mo.lastErr = err.Error()
			return report, err
		}
		report.Swapped = swapped
		mo.lastErr = ""
	}
	return report, nil
}

// repairFrozenLocked handles the frozen-binary case: no float memory
// exists, so the only repair is a wholesale reload of the verified
// checkpoint. The load (disk + quantization for a float checkpoint)
// runs with the state lock released; the install goes through the
// compare-and-swap so a swap that landed in between is not reverted.
func (mo *Monitor) repairFrozenLocked(report RepairReport, quarantined []int) (RepairReport, error) {
	if mo.cfg.CheckpointPath == "" || !mo.ckptArmed {
		report.Reason = "frozen binary snapshot and no armed checkpoint to reload"
		err := mo.failRepair(&report, quarantined, fmt.Errorf("reliability: %s", report.Reason))
		return report, err
	}
	mo.mu.Unlock()
	eng, err := serve.LoadEngine(mo.cfg.CheckpointPath, "binary")
	mo.mu.Lock()
	if err != nil {
		rerr := mo.failRepair(&report, quarantined, err)
		return report, rerr
	}
	// Re-validate at repair time: the file may have been rotated since
	// it was armed, and a wholesale reload must not change the serving
	// contract.
	if err := compatible(mo.base, eng.Model()); err != nil {
		rerr := mo.failRepair(&report, quarantined, err)
		return report, rerr
	}
	swapped, err := mo.srv.SwapIf(mo.cur, eng)
	if err != nil {
		rerr := mo.failRepair(&report, quarantined, err)
		return report, rerr
	}
	if !swapped {
		// The serving engine changed hands while the checkpoint loaded
		// (operator swap, trainer retrain): the reload must not revert
		// it. The next scrub adopts the new engine and re-evaluates.
		report.Reason = "serving engine changed hands mid-repair; deferring to next scrub"
		return report, nil
	}
	mo.adoptLocked(eng)
	report.Source = "checkpoint"
	report.Repaired = quarantined
	report.Swapped = true
	mo.repairs.Add(uint64(len(quarantined)))
	mo.lastErr = ""
	return report, nil
}

// repairViaTrainerLocked rebuilds the whole ensemble through the
// trainer's hot-retrain path and adopts the result. The retrain is a
// full refit that can run for minutes at paper scale, so the state
// lock is released for its duration — passMu (held by the caller)
// keeps other passes out, while Status keeps answering; the trainer
// installs the result through its own retrain-atomic swap path.
func (mo *Monitor) repairViaTrainerLocked(report RepairReport, quarantined []int) (RepairReport, error) {
	report.Source = "trainer"
	mo.mu.Unlock()
	rr, err := mo.cfg.Trainer.Retrain()
	mo.mu.Lock()
	if err != nil {
		rerr := mo.failRepair(&report, quarantined, err)
		return report, rerr
	}
	if !rr.Swapped {
		report.Reason = "trainer retrain skipped: " + rr.Reason
		err := mo.failRepair(&report, quarantined, fmt.Errorf("reliability: %s", report.Reason))
		return report, err
	}
	mo.adoptLocked(mo.srv.Engine())
	// The refit model no longer derives from the configured checkpoint;
	// checkpoint repair stays off until SetCheckpoint re-arms it.
	mo.ckptArmed = false
	report.Repaired = quarantined
	report.Swapped = true
	mo.repairs.Add(uint64(len(quarantined)))
	mo.lastErr = ""
	return report, nil
}

// failRepair marks the listed learners failed on the report, counts
// the failed attempts, and records the error for Status.
func (mo *Monitor) failRepair(report *RepairReport, failed []int, err error) error {
	report.Failed = append(report.Failed, failed...)
	mo.repairFails.Add(uint64(len(failed)))
	mo.lastErr = err.Error()
	return err
}

// Status snapshots the health ledger and counters for /reliability and
// the healthz reliability block.
func (mo *Monitor) Status() serve.ReliabilityStatus {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	st := serve.ReliabilityStatus{
		Learners:    len(mo.ledger),
		Scrubs:      mo.scrubs.Load(),
		Detections:  mo.detections.Load(),
		Quarantines: mo.quarantines.Load(),
		Repairs:     mo.repairs.Load(),
		RepairFails: mo.repairFails.Load(),
		CanaryRows:  len(mo.canaryX),
		LastScrubMS: mo.lastScrubMS,
		LastError:   mo.lastErr,
	}
	st.Ledger = make([]serve.LearnerHealth, len(mo.ledger))
	for i, e := range mo.ledger {
		h := serve.LearnerHealth{
			State:           "healthy",
			IntegrityFaults: e.integrityFaults,
			CanaryFaults:    e.canaryFaults,
			Repairs:         e.repairs,
		}
		if e.hasCanary {
			h.CanaryBaseline, h.CanaryLast = e.baseline, e.last
		}
		if e.quarantined {
			h.State = "quarantined"
			st.Quarantined = append(st.Quarantined, i)
		}
		st.Ledger[i] = h
	}
	st.Degraded = len(st.Quarantined) > 0
	return st
}

// Start launches the background scrub loop (no-op when ScrubEvery is
// zero or a loop already runs). Each tick scrubs and, when anything is
// quarantined and a repair source exists, repairs; errors are recorded
// in Status rather than stopping the loop.
func (mo *Monitor) Start() {
	if mo.cfg.ScrubEvery <= 0 {
		return
	}
	mo.loopMu.Lock()
	defer mo.loopMu.Unlock()
	if mo.stop != nil {
		return
	}
	mo.stop = make(chan struct{})
	mo.done = make(chan struct{})
	go mo.loop(mo.stop, mo.done)
}

func (mo *Monitor) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(mo.cfg.ScrubEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			report, err := mo.Scrub()
			if err != nil {
				continue
			}
			if report.Adopted {
				continue
			}
			if mo.autoRepairable() && len(mo.Status().Quarantined) > 0 {
				_, _ = mo.Repair()
			}
		}
	}
}

// autoRepairable reports whether the background loop should attempt a
// repair: a repair source must exist for the current backend, and the
// previous attempt must not have been a total failure that nothing has
// changed since (retrying those only burns a full re-threshold pass
// per tick and inflates the failure counters).
func (mo *Monitor) autoRepairable() bool {
	mo.mu.Lock()
	stuck := mo.autoStuck
	bin := mo.cur.Binary()
	ckpt := mo.cfg.CheckpointPath != "" && mo.ckptArmed
	trainer := mo.cfg.Trainer != nil
	mo.mu.Unlock()
	if stuck {
		return false
	}
	if ckpt || trainer {
		return true
	}
	return bin != nil && !bin.Frozen() // plane corruption re-thresholds from float memory
}

// Stop halts the background loop and waits for an in-flight pass to
// finish. Safe to call without Start and more than once.
func (mo *Monitor) Stop() {
	mo.loopMu.Lock()
	stop, done := mo.stop, mo.done
	mo.stop, mo.done = nil, nil
	mo.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// loadCheckpointModel reads a float ensemble checkpoint from disk.
func loadCheckpointModel(path string) (*boosthd.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return boosthd.Load(f)
}

// compatible verifies that a checkpoint's geometry matches the live
// model's, so a per-learner restore cannot graft vectors from a
// different hyperspace.
func compatible(live, ckpt *boosthd.Model) error {
	switch {
	case ckpt.Cfg.TotalDim != live.Cfg.TotalDim,
		ckpt.Cfg.NumLearners != live.Cfg.NumLearners,
		ckpt.Cfg.Classes != live.Cfg.Classes:
		return fmt.Errorf("checkpoint geometry %d/%d/%d does not match live model %d/%d/%d",
			ckpt.Cfg.TotalDim, ckpt.Cfg.NumLearners, ckpt.Cfg.Classes,
			live.Cfg.TotalDim, live.Cfg.NumLearners, live.Cfg.Classes)
	case ckpt.InputDim() != live.InputDim():
		return fmt.Errorf("checkpoint feature width %d does not match live model %d", ckpt.InputDim(), live.InputDim())
	case ckpt.Gamma() != live.Gamma():
		return fmt.Errorf("checkpoint encoder bandwidth %v does not match live model %v", ckpt.Gamma(), live.Gamma())
	}
	return nil
}
