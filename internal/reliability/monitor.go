// Package reliability is the runtime integrity subsystem for serving
// BoostHD models: it turns the paper's offline robustness claim — the
// boosted ensemble tolerates memory bit-flips — into a live serving
// guarantee. A Monitor watches the model memory behind a serve.Server
// through three mechanisms layered from cheap to semantic:
//
//  1. Detection. Every weak learner's memory is signed per dimension
//     segment: XOR-fold parity words plus position-mixed digests over
//     fixed-size blocks of the packed-binary sign and mask planes, and
//     the same fold over the aligned blocks of the float class
//     hypervectors. A background scrubber re-walks the memory on a
//     period and compares — a mismatch names the corrupted word range,
//     not just the learner. A small held-out canary set additionally
//     scores each learner solo, catching accuracy collapse a memory
//     checksum cannot attribute (e.g. corruption that predates
//     quantization, or drift).
//
//  2. Response, at two tiers. Corruption attributed to specific
//     segments quarantines only those dimension words: both scoring
//     backends honor per-learner dimension masks (the packed-binary
//     path ANDs the mask into the confidence masks and renormalizes by
//     the surviving popcount; the float path zeroes the masked class
//     components with matching norms), so the learner keeps voting from
//     its thousands of healthy dimensions. Full-learner alpha masking
//     remains the fallback — taken when the healthy fraction drops
//     below the criticality threshold, when the canary-measured impact
//     of the masked segments exceeds the quarantine drop, or when the
//     damage cannot be attributed at all. Every mask change installs
//     through the server's atomic compare-and-swap, so requests never
//     see a torn model.
//
//  3. Repair, surgically. Corrupted planes re-threshold from the intact
//     float memory per learner; corrupted float segments restore only
//     those dimension ranges from the last verified checkpoint; a fully
//     condemned learner restores wholesale; with a trainer attached, a
//     hot retrain rebuilds everything. Repaired memory is re-signed,
//     canary-verified, and un-masked.
//
// With live training attached, the trainer hands the monitor a fresh
// signature after every update it applies (NoteMutation), so strict
// integrity scrubbing keeps running: a version bump without a matching
// handed signature is corruption, not trust-on-sight.
package reliability

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"boosthd/internal/boosthd"
	"boosthd/internal/infer"
	"boosthd/internal/obs"
	"boosthd/internal/serve"
)

// Config tunes a Monitor.
type Config struct {
	// ScrubEvery is the background scrub (and auto-repair) period; zero
	// means no background loop — Scrub/Repair are driven manually.
	ScrubEvery time.Duration
	// QuarantineDrop is the absolute canary-accuracy drop below a
	// learner's signed baseline that quarantines it — and the
	// criticality budget for dimension masking: a learner whose masked
	// segments carry more canary-measured impact than this is fully
	// alpha-masked instead. Zero selects the 0.15 default — exact-zero
	// tolerance is not expressible (and would quarantine on ordinary
	// canary noise; use a small positive value).
	QuarantineDrop float64
	// SegmentWords is the signature segment width in packed 64-bit
	// words (64 dimensions each): corruption is attributed and masked
	// at this granularity. Zero selects DefaultSegmentWords (8, i.e.
	// 512 dimensions); smaller segments attribute more surgically at
	// 2/SegmentWords words of signature storage overhead.
	SegmentWords int
	// MinHealthyFraction is the dimension-quarantine floor: a learner
	// whose healthy-dimension fraction would drop below it is fully
	// alpha-masked instead of dimension-masked (too little trusted
	// memory left to vote meaningfully). Zero selects the 0.5 default;
	// >= 1 forces learner-granular quarantine for every fault — the
	// PR-4 behavior, kept for A/B comparison.
	MinHealthyFraction float64
	// CheckpointPath names the last verified checkpoint OF THE SERVING
	// MODEL (a float ensemble written by Model.Save): the repair source
	// for corrupted float class memory, and — for a frozen binary
	// snapshot, which has no float memory at all — the full-reload
	// source. Empty disables checkpoint repair. If the serving engine
	// later changes hands (operator swap, trainer retrain), the
	// checkpoint no longer describes the serving model and checkpoint
	// repair disarms automatically; re-arm with SetCheckpoint.
	CheckpointPath string
	// Trainer, when set, is the fallback repair source: a corrupted
	// learner with no checkpoint to restore from triggers a targeted
	// refit through the trainer's existing hot-retrain path.
	Trainer serve.Trainer
	// SignedUpdates expects every legitimate class-memory mutation to
	// be announced through NoteMutation with a fresh signature (the
	// trainer→monitor contract): a version counter that advanced
	// without a matching handed signature gets one scrub pass of grace
	// for the in-flight handoff, then is treated as corruption. This
	// keeps integrity scrubbing strict under live training, where
	// TrustVersioned would wave every mutation through.
	SignedUpdates bool
	// StatePath, when set, persists the health ledger — per-learner fault
	// counters, canary baselines, and segment-criticality baselines —
	// after every scrub and repair pass, so a restart resumes the fault
	// history instead of starting blind. Restore it with LoadState (after
	// SetCanary, so the persisted baselines win over freshly recomputed
	// ones). Writes are atomic; a failed write is recorded in Status's
	// LastError rather than failing the pass.
	StatePath string
	// Journal, when set, receives a typed event for every non-clean
	// scrub verdict, quarantine/mask change, repair attempt, and
	// baseline adoption, each pass grouped under one correlation ID.
	// Nil disables journaling at the cost of a nil check per event.
	Journal *obs.Journal
	// TrustVersioned treats a learner whose version counter advanced
	// since signing as legitimately mutated (streaming online updates,
	// in-place fits): it is re-signed instead of flagged. Prefer
	// SignedUpdates when the mutator can hand signatures; leave both
	// false for a static serving model, where any mutation is
	// corruption — fault injection through the locked paths bumps
	// versions too, and strict mode catches it. The canary check
	// guards all modes.
	TrustVersioned bool
}

func (c Config) withDefaults() Config {
	if c.QuarantineDrop == 0 {
		c.QuarantineDrop = 0.15
	}
	if c.SegmentWords <= 0 {
		c.SegmentWords = DefaultSegmentWords
	}
	if c.MinHealthyFraction == 0 {
		c.MinHealthyFraction = 0.5
	}
	return c
}

// maxPending bounds the per-learner queue of trainer-handed signatures
// awaiting reconciliation by the next scrub.
const maxPending = 16

// entry is one learner's row in the health ledger.
type entry struct {
	sig learnerSig // reference signature; masked segments keep pre-corruption values (the repair target)
	// pending holds trainer-handed signatures (NoteMutation) not yet
	// reconciled by a scrub; suspect is a version seen moved without a
	// matching handoff, granted one pass of grace under SignedUpdates.
	pending []learnerSig
	suspect uint64

	dims int

	// Dimension-quarantine state, all indexed by signature segment:
	// maskedSeg marks segments currently masked out of the serving
	// views; floatBad/planeBad record which representation the scrub
	// attributed the corruption to (they drive the surgical repair).
	maskedSeg []bool
	floatBad  []bool
	planeBad  []bool
	// crit is the canary-measured accuracy impact of masking each
	// segment solo, taken at baseline time — the criticality ranking
	// behind the dimension-vs-learner quarantine decision.
	crit    []float64
	hasCrit bool

	quarantined bool
	// canarySuspect marks a quarantine the canary contributed to: the
	// learner's memory cannot be trusted even where its signatures
	// agree, so repair must restore it from an external source rather
	// than re-threshold in place.
	canarySuspect bool

	integrityFaults uint64
	canaryFaults    uint64
	repairs         uint64

	baseline  float64 // solo canary accuracy at signing
	last      float64 // most recent solo canary accuracy
	hasCanary bool
}

// hasDimMask reports whether any segment is currently masked.
func (e *entry) hasDimMask() bool {
	for _, bad := range e.maskedSeg {
		if bad {
			return true
		}
	}
	return false
}

// maskedDims returns the number of local dimensions currently masked.
func (e *entry) maskedDims(segWords int) int {
	masked := 0
	for s, bad := range e.maskedSeg {
		if bad {
			lo, hi := segDimRange(e.dims, segWords, s)
			masked += hi - lo
		}
	}
	return masked
}

// maskedWords returns the number of packed 64-bit words masked out.
func (e *entry) maskedWords(segWords int) int {
	words := (e.dims + 63) / 64
	masked := 0
	for s, bad := range e.maskedSeg {
		if bad {
			lo := s * segWords
			hi := lo + segWords
			if hi > words {
				hi = words
			}
			masked += hi - lo
		}
	}
	return masked
}

// healthyFraction returns the fraction of local dimensions still
// trusted.
func (e *entry) healthyFraction(segWords int) float64 {
	return 1 - float64(e.maskedDims(segWords))/float64(e.dims)
}

// healthyMask builds the packed healthy-dimension mask the serving
// views consume, or nil when nothing is masked.
func (e *entry) healthyMask(segWords int) []uint64 {
	if !e.hasDimMask() {
		return nil
	}
	var masked []int
	for s, bad := range e.maskedSeg {
		if bad {
			masked = append(masked, s)
		}
	}
	return segMask(e.dims, segWords, masked)
}

// critImpact sums the canary-measured impact of the currently masked
// segments — the criticality the escalation decision ranks against
// QuarantineDrop.
func (e *entry) critImpact() float64 {
	if !e.hasCrit {
		return 0
	}
	sum := 0.0
	for s, bad := range e.maskedSeg {
		if bad && s < len(e.crit) {
			sum += e.crit[s]
		}
	}
	return sum
}

// adoptPending reconciles a moved version against the trainer-handed
// signatures: when one matches cur exactly (version and content), the
// reference's float half adopts it and consumed handoffs are dropped.
func (e *entry) adoptPending(cur *learnerSig) bool {
	matched := false
	for _, p := range e.pending {
		if p.version == cur.version && p.floatEqual(cur) {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	e.sig.version = cur.version
	e.sig.hasFloat = cur.hasFloat
	e.sig.classSegs = cur.classSegs
	kept := e.pending[:0]
	for _, p := range e.pending {
		if p.version > cur.version {
			kept = append(kept, p)
		}
	}
	e.pending = kept
	e.suspect = 0
	return true
}

// hasMatchingPending reports (without consuming anything) whether a
// queued handoff matches cur exactly — the read-only form of
// adoptPending, used by Repair to decide whether a version that moved
// since the scrub was announced.
func (e *entry) hasMatchingPending(cur *learnerSig) bool {
	for _, p := range e.pending {
		if p.version == cur.version && p.floatEqual(cur) {
			return true
		}
	}
	return false
}

// pendingNewerThan reports whether a handed signature strictly newer
// than version is queued — the scan raced a burst of announced updates
// and the next pass reconciles against the newer handoff. A pending
// entry AT version with different content deliberately does not count:
// that means the memory changed after its handoff signed it, which the
// grace-then-corrupt path must judge.
func (e *entry) pendingNewerThan(version uint64) bool {
	for _, p := range e.pending {
		if p.version > version {
			return true
		}
	}
	return false
}

// ScrubReport describes one scrub pass.
type ScrubReport struct {
	// Adopted is true when the serving engine changed hands since the
	// last pass (operator swap, trainer retrain): the monitor re-signed
	// the new model instead of scrubbing signatures it no longer holds.
	Adopted bool `json:"adopted,omitempty"`
	// IntegrityFaults and CanaryFaults list learners flagged this pass.
	IntegrityFaults []int `json:"integrity_faults,omitempty"`
	CanaryFaults    []int `json:"canary_faults,omitempty"`
	// Quarantined lists learners newly alpha-masked wholesale this
	// pass; DimMasked lists learners whose dimension masks grew instead
	// (still voting from their healthy dimensions).
	Quarantined []int `json:"quarantined,omitempty"`
	DimMasked   []int `json:"dim_masked,omitempty"`
	// MaskedWords is the total packed words currently masked across the
	// ensemble after this pass.
	MaskedWords int `json:"masked_words,omitempty"`
	// Swapped is true when a quarantine mask changed and a rebuilt
	// engine was installed.
	Swapped bool    `json:"swapped,omitempty"`
	TookMS  float64 `json:"took_ms"`
}

// RepairReport describes one repair pass.
type RepairReport struct {
	Repaired []int `json:"repaired,omitempty"`
	Failed   []int `json:"failed,omitempty"`
	// Segments counts dimension segments restored surgically (as
	// opposed to whole-learner restores).
	Segments int     `json:"segments,omitempty"`
	Source   string  `json:"source,omitempty"` // rethreshold, checkpoint, trainer
	Swapped  bool    `json:"swapped,omitempty"`
	Reason   string  `json:"reason,omitempty"` // why nothing was repaired
	TookMS   float64 `json:"took_ms"`
}

// Monitor owns the reliability loop for one serve.Server. All methods
// are safe for concurrent use. Two locks split responsiveness from
// serialization: passMu serializes whole Scrub/Repair passes (so the
// background loop and manual calls never interleave), while mu guards
// the monitor state and is RELEASED around the slow repair steps
// (checkpoint load, trainer retrain) — /healthz and /reliability keep
// answering while the monitor is mid-heal.
type Monitor struct {
	cfg Config
	srv *serve.Server

	passMu sync.Mutex // serializes Scrub/Repair passes end to end

	mu          sync.Mutex
	cur         *infer.Engine  // engine the monitor installed or signed last
	base        *boosthd.Model // model carrying the true (unmasked) alphas
	ledger      []*entry
	masked      []bool
	canaryX     [][]float64
	canaryY     []int
	lastScrubMS float64
	lastErr     string
	// autoStuck marks a repair attempt that restored nothing while
	// something stayed quarantined: the background loop stops retrying
	// (each retry would redo the full re-threshold + canary pass and
	// inflate the failure counters) until a scrub changes the picture —
	// a new quarantine, an adoption, or a manual Repair.
	autoStuck bool
	// ckptArmed is true while CheckpointPath still describes the model
	// behind the serving engine. Adopting a foreign engine (operator
	// swap, trainer retrain) disarms it: restoring learners from a
	// checkpoint of a DIFFERENT model would graft stale weights into
	// the new one and re-sign the chimera as healthy.
	ckptArmed bool
	// passCorr is the journal correlation ID of the Scrub/Repair pass
	// currently holding passMu; every event the pass appends shares it.
	passCorr uint64

	scrubs      atomic.Uint64
	detections  atomic.Uint64
	quarantines atomic.Uint64
	repairs     atomic.Uint64
	repairFails atomic.Uint64

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// New builds a Monitor over the model behind srv's current serving
// engine and signs it immediately: the engine installed at construction
// is the trusted baseline. When CheckpointPath is set, the checkpoint is
// opened once up front so a missing or unreadable repair source fails at
// configuration time, not mid-incident.
func New(srv *serve.Server, cfg Config) (*Monitor, error) {
	if srv == nil {
		return nil, fmt.Errorf("reliability: nil server")
	}
	cfg = cfg.withDefaults()
	if cfg.QuarantineDrop < 0 || cfg.QuarantineDrop > 1 {
		return nil, fmt.Errorf("reliability: quarantine drop %v outside [0,1]", cfg.QuarantineDrop)
	}
	if cfg.MinHealthyFraction < 0 {
		return nil, fmt.Errorf("reliability: min healthy fraction %v negative", cfg.MinHealthyFraction)
	}
	if cfg.CheckpointPath != "" {
		if err := validateCheckpoint(srv.Engine(), cfg.CheckpointPath); err != nil {
			return nil, fmt.Errorf("reliability: repair checkpoint: %w", err)
		}
	}
	mo := &Monitor{cfg: cfg, srv: srv, ckptArmed: cfg.CheckpointPath != ""}
	// adoptLocked (and the baseline path under it) runs with mo.mu held
	// everywhere else; hold it here too so its internal unlock/relock
	// around heavy reads stays uniform.
	mo.mu.Lock()
	mo.adoptLocked(srv.Engine())
	mo.mu.Unlock()
	return mo, nil
}

// Config returns the resolved configuration.
func (mo *Monitor) Config() Config {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.cfg
}

// SetCheckpoint re-arms checkpoint repair with a checkpoint of the
// CURRENT serving model — the call an operator makes after swapping in
// a new checkpoint, so the monitor can restore from it again. The file
// is validated (loadable; geometry-compatible for a non-frozen model)
// before anything changes.
func (mo *Monitor) SetCheckpoint(path string) error {
	if path == "" {
		return fmt.Errorf("reliability: empty checkpoint path")
	}
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	mo.mu.Lock()
	cur := mo.cur
	mo.mu.Unlock()
	if err := validateCheckpoint(cur, path); err != nil {
		return fmt.Errorf("reliability: repair checkpoint: %w", err)
	}
	mo.mu.Lock()
	mo.cfg.CheckpointPath = path
	mo.ckptArmed = true
	mo.mu.Unlock()
	return nil
}

// validateCheckpoint verifies path is a usable repair source for the
// serving engine: loadable, and geometry-compatible with the model
// behind cur. For a frozen snapshot — whose repair unit is a wholesale
// engine reload — the comparison runs against the reloaded engine's
// model shell, so a checkpoint of a different model cannot be swapped
// into a serving contract it does not satisfy.
func validateCheckpoint(cur *infer.Engine, path string) error {
	if bin := cur.Binary(); bin != nil && bin.Frozen() {
		eng, err := serve.LoadEngine(path, "binary")
		if err != nil {
			return err
		}
		return compatible(cur.Model(), eng.Model())
	}
	m, err := loadCheckpointModel(path)
	if err != nil {
		return err
	}
	return compatible(cur.Model(), m)
}

// SetCanary installs a held-out labeled canary set, records each
// learner's solo accuracy on it as its health baseline, and measures
// each dimension segment's criticality (the accuracy each learner loses
// when that segment alone is masked). The rows are deep-copied — the
// canary is the reference the scrubber trusts, so no caller alias may
// reach it afterwards.
func (mo *Monitor) SetCanary(X [][]float64, y []int) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("reliability: bad canary set (%d rows, %d labels)", len(X), len(y))
	}
	// passMu keeps the install out of a running pass: Scrub and Repair
	// read the canary slices with the state lock released.
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	mo.mu.Lock()
	defer mo.mu.Unlock()
	want := mo.base.InputDim()
	classes := mo.base.Cfg.Classes
	cx := make([][]float64, len(X))
	cy := make([]int, len(y))
	for i, row := range X {
		if len(row) != want {
			return fmt.Errorf("reliability: canary row %d has %d features, model expects %d", i, len(row), want)
		}
		if y[i] < 0 || y[i] >= classes {
			return fmt.Errorf("reliability: canary label %d at row %d outside [0,%d)", y[i], i, classes)
		}
		cx[i] = append([]float64(nil), row...)
		cy[i] = y[i]
	}
	mo.canaryX, mo.canaryY = cx, cy
	return mo.baselineCanaryLocked()
}

// baselineCanaryLocked scores every learner on the canary set, records
// the accuracies as baselines, and ranks segment criticality: for each
// segment index, an engine view with exactly that segment masked in
// every learner scores the canary, and the per-learner accuracy drop
// becomes that segment's measured impact. The scrub's dimension-vs-
// learner quarantine decision sums these impacts over a learner's
// masked segments and escalates past QuarantineDrop.
//
// Called with mo.mu held; the canary sweeps (one per segment — the
// heaviest reads the monitor ever does) run with the lock RELEASED so
// Status and NoteMutation keep answering, exactly like Scrub's heavy
// reads. passMu in every caller's stack keeps the captured state
// stable for the duration.
func (mo *Monitor) baselineCanaryLocked() error {
	if len(mo.canaryX) == 0 {
		return nil
	}
	cur, base := mo.cur, mo.base
	canaryX, canaryY := mo.canaryX, mo.canaryY
	segWords := mo.cfg.SegmentWords
	dims := make([]int, len(mo.ledger))
	for i, e := range mo.ledger {
		dims[i] = e.dims
	}
	maxSegs := 0
	for _, d := range dims {
		if n := segsFor(d, segWords); n > maxSegs {
			maxSegs = n
		}
	}

	mo.mu.Unlock()
	acc, err := cur.EvaluateLearners(canaryX, canaryY)
	var crit [][]float64
	if err == nil && maxSegs > 1 {
		crit = make([][]float64, maxSegs)
		noMask := make([]bool, len(dims))
		for s := 0; s < maxSegs && err == nil; s++ {
			healthy := make([][]uint64, len(dims))
			any := false
			for i, d := range dims {
				if s >= segsFor(d, segWords) {
					continue
				}
				healthy[i] = segMask(d, segWords, []int{s})
				any = true
			}
			if !any {
				continue
			}
			var eng *infer.Engine
			eng, err = infer.RemaskDims(cur, base, noMask, healthy)
			if err == nil {
				crit[s], err = eng.EvaluateLearners(canaryX, canaryY)
			}
		}
	}
	mo.mu.Lock()
	if err != nil {
		return fmt.Errorf("reliability: canary baseline: %w", err)
	}
	for i, e := range mo.ledger {
		e.baseline, e.last, e.hasCanary = acc[i], acc[i], true
		if maxSegs <= 1 {
			// One segment per learner: masking it is masking the
			// learner; the criticality ranking degenerates to the
			// canary drop itself.
			if len(e.crit) == 1 {
				e.crit[0] = e.baseline
			}
		} else {
			for s := range e.crit {
				if s >= len(crit) || crit[s] == nil {
					continue
				}
				d := e.baseline - crit[s][i]
				if d < 0 {
					d = 0
				}
				e.crit[s] = d
			}
		}
		e.hasCrit = true
	}
	return nil
}

// adoptLocked re-points the monitor at eng: fresh ledger, empty
// quarantine masks, signatures taken from the memory behind it, canary
// baselines recomputed when a canary set is installed. The engine is
// presumed verified — adoption is for engines installed by trusted
// actors (construction, operator swap, trainer retrain, repair).
func (mo *Monitor) adoptLocked(eng *infer.Engine) {
	mo.cur = eng
	mo.base = eng.Model()
	sigs := signModel(mo.base, eng.Binary(), mo.cfg.SegmentWords)
	mo.ledger = make([]*entry, len(sigs))
	for i := range sigs {
		segs := sigs[i].segs()
		mo.ledger[i] = &entry{
			sig:       sigs[i],
			dims:      sigs[i].dims,
			maskedSeg: make([]bool, segs),
			floatBad:  make([]bool, segs),
			planeBad:  make([]bool, segs),
			crit:      make([]float64, segs),
		}
	}
	mo.masked = make([]bool, len(sigs))
	if len(mo.canaryX) > 0 {
		if err := mo.baselineCanaryLocked(); err != nil {
			// The adopted model cannot score the canary (for example a
			// different feature width): drop the canary rather than
			// flag every learner against a baseline that no longer
			// applies, and surface the reason in Status.
			mo.canaryX, mo.canaryY = nil, nil
			for _, e := range mo.ledger {
				e.hasCanary = false
			}
			mo.lastErr = err.Error()
		}
	}
}

// NoteMutation is the trainer→monitor integrity handoff: called right
// after a locked streaming update moved the listed learners' class
// memories, it re-signs exactly those learners and queues the
// signatures as announced mutations. Under SignedUpdates the next scrub
// trusts a moved version only if it matches a handed signature — so
// live training stays compatible with strict corruption detection at
// per-learner, per-update granularity instead of TrustVersioned's
// wholesale waiver.
func (mo *Monitor) NoteMutation(learners []int) {
	if len(learners) == 0 {
		return
	}
	// Signing walks each learner's full class memory: do it with only
	// the learner's own read lock held, not mo.mu — this runs on the
	// trainer's observe path, which must not serialize behind Status or
	// a scrub reconciliation.
	mo.mu.Lock()
	base := mo.base
	count := len(mo.ledger)
	segWords := mo.cfg.SegmentWords
	mo.mu.Unlock()
	idx := make([]int, 0, len(learners))
	sigs := make([]learnerSig, 0, len(learners))
	for _, i := range learners {
		if i < 0 || i >= count || i >= len(base.Learners) {
			continue
		}
		idx = append(idx, i)
		sigs = append(sigs, signFloatLearner(base.Learners[i], segWords))
	}
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if mo.base != base {
		// The monitor adopted a different model while we signed; these
		// handoffs describe memory it no longer scrubs.
		return
	}
	for k, i := range idx {
		if i >= len(mo.ledger) {
			continue
		}
		e := mo.ledger[i]
		e.pending = append(e.pending, sigs[k])
		if len(e.pending) > maxPending {
			e.pending = e.pending[len(e.pending)-maxPending:]
		}
	}
}

// Scrub runs one detection pass: verify every healthy learner's segment
// signatures, score the canary, mask what failed — corrupted segments
// at dimension granularity, whole learners when the damage is too broad
// (healthy fraction below MinHealthyFraction), too critical (summed
// canary impact of the masked segments past QuarantineDrop), or
// unattributable — and, when any mask changed, install a rebuilt
// two-tier-masked engine through the server's atomic swap. Fully
// quarantined learners are skipped (their memory is known bad until
// repaired); already-masked segments are skipped the same way. If the
// serving engine changed hands since the last pass, the monitor adopts
// and re-signs it instead.
func (mo *Monitor) Scrub() (ScrubReport, error) {
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	mo.passCorr = mo.cfg.Journal.NewCorr()
	// Registered before the state lock's defer, so it runs after mu is
	// released: the durable ledger snapshot reflects this pass's verdicts.
	defer mo.persistState()
	start := time.Now()
	report := ScrubReport{}
	defer func() {
		report.TookMS = time.Since(start).Seconds() * 1e3
		mo.mu.Lock()
		mo.lastScrubMS = report.TookMS
		mo.mu.Unlock()
		mo.scrubs.Add(1)
	}()

	mo.mu.Lock()
	if eng := mo.srv.Engine(); eng != mo.cur {
		mo.adoptForeignLocked(eng)
		report.Adopted = true
		mo.mu.Unlock()
		return report, nil
	}
	cur, base := mo.cur, mo.base
	canaryX, canaryY := mo.canaryX, mo.canaryY
	segWords := mo.cfg.SegmentWords
	mo.mu.Unlock()

	// The heavy reads — full-memory signing and the canary sweep — run
	// with the state lock released, so Status (and therefore /healthz
	// and /reliability) keeps answering mid-scrub. passMu keeps other
	// passes (and SetCanary/SetCheckpoint) out, and external swaps only
	// change srv.Engine(), which the next pass adopts.
	sigs := signModel(base, cur.Binary(), segWords)
	var acc []float64
	var canaryErr error
	if len(canaryX) > 0 {
		acc, canaryErr = cur.EvaluateLearners(canaryX, canaryY)
	}

	mo.mu.Lock()
	defer mo.mu.Unlock()
	flagged := make([]bool, len(mo.ledger))    // full quarantine this pass
	dimFlagged := make([]bool, len(mo.ledger)) // dimension masks grew this pass
	for i, e := range mo.ledger {
		if e.quarantined {
			continue
		}
		cur := &sigs[i]
		ref := &e.sig
		announced := false
		deferFloat := false
		if ref.hasFloat && cur.version != ref.version {
			switch {
			case e.adoptPending(cur):
				// A trainer-handed signature matches: the mutation was
				// announced and the reference now describes it.
				announced = true
			case mo.cfg.TrustVersioned:
				ref.version = cur.version
				ref.classSegs = cur.classSegs
				e.suspect = 0
				announced = true
			case cur.version < ref.version, e.pendingNewerThan(cur.version):
				// The scan raced announced updates: the reference, or a
				// queued handoff, already describes a NEWER state than
				// we scanned. Defer the float verdict to the next pass
				// instead of burning the grace — under sustained
				// streaming this is the common case, and treating it as
				// suspect would starve verification forever (each pass
				// would see yet another version). The plane check below
				// still runs, so silent word faults are not deferred
				// with it.
				deferFloat = true
			case mo.cfg.SignedUpdates && e.suspect != cur.version:
				// One pass of grace: the update may have completed just
				// before our scan while its handoff is still in flight.
				e.suspect = cur.version
				deferFloat = true
			default:
				// Unannounced mutation: strict mode treats it as
				// corruption, but the segment diff still says WHERE —
				// the reference content predates the mutation, so the
				// changed segments are exactly the untrusted ones.
				ref.version = cur.version
			}
		} else {
			e.suspect = 0
		}

		var newFloat []int
		if !announced && !deferFloat {
			newFloat = floatBadSegs(ref, cur, e.maskedSeg)
		}
		var newPlane []int
		if ref.hasPlanes {
			if cur.planeVersion != ref.planeVersion {
				// Planes only move by re-quantization from the float
				// memory. With the float side verified (or restored to
				// announced state) above, the re-quantized planes are
				// trustworthy: adopt their signatures. With the float
				// verdict deferred, defer the plane verdict with it
				// (the planes derive from the unverified float state);
				// with float corruption in play the float segments
				// carry the response, and the surgical re-threshold at
				// repair rebuilds the planes anyway.
				switch {
				case deferFloat:
				case len(newFloat) == 0:
					ref.planeVersion = cur.planeVersion
					ref.signSegs = cur.signSegs
					ref.maskSegs = cur.maskSegs
				default:
					newPlane = newFloat
				}
			} else {
				newPlane = planeBadSegs(ref, cur, e.maskedSeg)
			}
		}
		if len(newFloat) == 0 && len(newPlane) == 0 {
			continue
		}

		e.integrityFaults++
		report.IntegrityFaults = append(report.IntegrityFaults, i)
		for _, s := range newFloat {
			e.floatBad[s] = true
			e.maskedSeg[s] = true
		}
		for _, s := range newPlane {
			e.planeBad[s] = true
			e.maskedSeg[s] = true
		}
		// Criticality-ranked tier decision: dimension masking keeps the
		// learner voting unless too little trusted memory remains or
		// the masked segments were measured too important to lose.
		if e.healthyFraction(segWords) < mo.cfg.MinHealthyFraction ||
			e.critImpact() > mo.cfg.QuarantineDrop {
			flagged[i] = true
		} else {
			dimFlagged[i] = true
		}
	}

	// A canary failure must not stop integrity-flagged learners from
	// being masked below — the error is reported after the response,
	// not instead of it.
	if canaryErr != nil {
		mo.lastErr = canaryErr.Error()
	}
	for i := 0; acc != nil && i < len(mo.ledger); i++ {
		e := mo.ledger[i]
		e.last = acc[i]
		if e.quarantined || !e.hasCanary {
			continue
		}
		// dimFlagged learners were measured BEFORE their new mask took
		// effect — the collapse the canary sees is the corruption the
		// mask just excluded. Their masked accuracy is judged next
		// pass; an already-dimension-masked learner that still scores
		// collapsed escalates to a full quarantine here.
		if dimFlagged[i] || flagged[i] {
			continue
		}
		if e.baseline-acc[i] > mo.cfg.QuarantineDrop {
			e.canaryFaults++
			// A collapse the segment signatures did NOT explain (or
			// one that survives its dimension mask): the rest of the
			// memory cannot be trusted either, so repair must restore
			// from an external source.
			e.canarySuspect = true
			flagged[i] = true
			report.CanaryFaults = append(report.CanaryFaults, i)
		}
	}

	// Never alpha-mask the entire ensemble: an all-zero-alpha model
	// answers class 0 for every request with a 200 — strictly worse
	// than serving the least-damaged learner. Dimension-masked learners
	// still vote, so they count as serving; among learners flagged for
	// FULL quarantine, keep the one with the best current canary
	// accuracy (lowest index without a canary) voting. It stays flagged
	// in the ledger and the error surfaces in Status, so the
	// total-corruption event is loud, not silent.
	healthy := 0
	for i, e := range mo.ledger {
		if !e.quarantined && !flagged[i] {
			healthy++
		}
	}
	if healthy == 0 {
		keep, best := -1, -1.0
		for i, bad := range flagged {
			if !bad {
				continue
			}
			score := -float64(i)
			if acc != nil && mo.ledger[i].hasCanary {
				score = acc[i]
			}
			if keep == -1 || score > best {
				keep, best = i, score
			}
		}
		if keep >= 0 {
			flagged[keep] = false
			mo.ledger[keep].canarySuspect = false
			if mo.ledger[keep].hasDimMask() {
				dimFlagged[keep] = true // serve it dimension-masked at least
			}
			mo.lastErr = fmt.Sprintf("all %d learners corrupted; keeping learner %d voting so the server still answers", len(mo.ledger), keep)
		}
	}

	changed := false
	for i, bad := range flagged {
		if !bad {
			continue
		}
		mo.ledger[i].quarantined = true
		mo.masked[i] = true
		mo.detections.Add(1)
		mo.quarantines.Add(1)
		report.Quarantined = append(report.Quarantined, i)
		changed = true
	}
	for i, bad := range dimFlagged {
		if !bad || flagged[i] {
			continue
		}
		mo.detections.Add(1)
		report.DimMasked = append(report.DimMasked, i)
		changed = true
	}
	// Journal the pass verdict before the mask install, so the
	// engine_swap event of a landed install orders after its cause.
	if len(report.IntegrityFaults) > 0 || len(report.CanaryFaults) > 0 {
		mo.journal(obs.Event{Type: obs.EvScrub,
			Learners: append(append([]int(nil), report.IntegrityFaults...), report.CanaryFaults...),
			Detail:   fmt.Sprintf("integrity faults %v, canary faults %v", report.IntegrityFaults, report.CanaryFaults)})
	}
	if len(report.Quarantined) > 0 {
		mo.journal(obs.Event{Type: obs.EvQuarantine, Learners: report.Quarantined,
			Detail: "alpha-masked out of the vote"})
	}
	for _, i := range report.DimMasked {
		e := mo.ledger[i]
		var segs []int
		for s, bad := range e.maskedSeg {
			if bad {
				segs = append(segs, s)
			}
		}
		mo.journal(obs.Event{Type: obs.EvDimMask, Learners: []int{i}, Segments: segs,
			Detail: fmt.Sprintf("voting from %.0f%% healthy dimensions", 100*e.healthyFraction(segWords))})
	}
	report.MaskedWords = mo.totalMaskedWordsLocked()
	if changed {
		mo.autoStuck = false // the picture changed; repair may retry
		swapped, err := mo.installMaskLocked()
		if err != nil {
			mo.lastErr = err.Error()
			return report, err
		}
		report.Swapped = swapped
	}
	if canaryErr != nil {
		return report, fmt.Errorf("reliability: canary scrub: %w", canaryErr)
	}
	return report, nil
}

// totalMaskedWordsLocked sums masked packed words across the ledger
// (dimension masks only; fully quarantined learners are counted by the
// quarantine list, not here).
func (mo *Monitor) totalMaskedWordsLocked() int {
	total := 0
	for _, e := range mo.ledger {
		if !e.quarantined {
			total += e.maskedWords(mo.cfg.SegmentWords)
		}
	}
	return total
}

// adoptForeignLocked adopts an engine installed by someone else —
// operator swap or trainer retrain. Besides the normal adoption it
// disarms checkpoint repair: the configured checkpoint described the
// previous model, and restoring its learners into the new one would
// graft stale weights (SetCheckpoint re-arms with a fresh file).
func (mo *Monitor) adoptForeignLocked(eng *infer.Engine) {
	mo.adoptLocked(eng)
	mo.autoStuck = false
	if mo.ckptArmed {
		mo.ckptArmed = false
		mo.lastErr = "serving engine changed hands; checkpoint repair disarmed until SetCheckpoint"
	}
	mo.journal(obs.Event{Type: obs.EvAdopt, Version: mo.srv.ModelVersion(),
		Detail: "serving engine changed hands; re-signed as new baseline"})
}

// healthyMasksLocked assembles the per-learner healthy-dimension masks
// the serving views consume, or nil when no learner is dimension-masked.
func (mo *Monitor) healthyMasksLocked() [][]uint64 {
	var healthy [][]uint64
	for i, e := range mo.ledger {
		if e.quarantined || !e.hasDimMask() {
			continue
		}
		if healthy == nil {
			healthy = make([][]uint64, len(mo.ledger))
		}
		healthy[i] = e.healthyMask(mo.cfg.SegmentWords)
	}
	return healthy
}

// installMaskLocked rebuilds the serving engine for the current
// two-tier quarantine masks and installs it via compare-and-swap,
// reporting whether it landed. A false return means the serving engine
// changed hands mid-pass (operator checkpoint, trainer retrain): the
// stale masked view must NOT revert that swap, so nothing is installed
// and the next scrub adopts the new engine and re-evaluates.
func (mo *Monitor) installMaskLocked() (bool, error) {
	eng, err := infer.RemaskDims(mo.cur, mo.base, mo.masked, mo.healthyMasksLocked())
	if err != nil {
		return false, fmt.Errorf("reliability: %w", err)
	}
	swapped, err := mo.srv.SwapIf(mo.cur, eng)
	if err != nil {
		return false, fmt.Errorf("reliability: %w", err)
	}
	if !swapped {
		return false, nil
	}
	mo.cur = eng
	return true, nil
}

// Repair attempts to restore every masked learner — fully quarantined
// or dimension-masked — and un-mask what verifies afterwards:
//
//   - Corrupted quantized planes re-threshold from the intact float
//     memory, surgically: only the affected learners are re-quantized
//     (source "rethreshold").
//   - Corrupted float segments restore exactly those dimension ranges
//     from the verified checkpoint through the learner's locked
//     RestoreSegments; a fully condemned learner (unattributable or
//     canary-suspect damage) restores wholesale via SetClass (source
//     "checkpoint"). Serving never sees a torn vector either way.
//   - With no checkpoint but a trainer attached, one hot retrain over
//     the trainer's buffer rebuilds the whole ensemble and the monitor
//     adopts the result (source "trainer").
//   - A frozen binary snapshot has no float memory at all: the whole
//     engine is reloaded from the checkpoint and adopted.
//
// Repaired learners are re-signed, canary-verified at their restored
// (unmasked) fidelity, and removed from both mask tiers; the rebuilt
// engine is installed through the server's atomic swap.
func (mo *Monitor) Repair() (RepairReport, error) {
	mo.passMu.Lock()
	defer mo.passMu.Unlock()
	mo.passCorr = mo.cfg.Journal.NewCorr()
	// Runs after mu's deferred unlock (LIFO), so the durable ledger
	// snapshot includes this pass's repair counts.
	defer mo.persistState()
	mo.mu.Lock()
	defer mo.mu.Unlock()
	start := time.Now()
	report := RepairReport{}
	defer func() {
		report.TookMS = time.Since(start).Seconds() * 1e3
		// A pass that restored nothing while something stayed
		// quarantined cannot succeed by repetition; park the background
		// auto-repair until the picture changes.
		mo.autoStuck = len(report.Repaired) == 0 && len(report.Failed) > 0
	}()

	var affected []int
	for i, e := range mo.ledger {
		if e.quarantined || e.hasDimMask() {
			affected = append(affected, i)
		}
	}
	if len(affected) == 0 {
		report.Reason = "nothing quarantined"
		return report, nil
	}
	segWords := mo.cfg.SegmentWords

	bin := mo.cur.Binary()
	if bin != nil && bin.Frozen() {
		return mo.repairFrozenLocked(report, affected)
	}

	// Decide per learner whether (and where) the float memory itself is
	// damaged or only the derived quantized planes are.
	sigs := signModel(mo.base, nil, segWords)
	type floatNeed struct {
		learner int
		whole   bool
		segs    []int
	}
	var needFloat []floatNeed
	for _, i := range affected {
		e := mo.ledger[i]
		if e.quarantined {
			if !sigs[i].floatEqual(&e.sig) || e.canarySuspect {
				needFloat = append(needFloat, floatNeed{learner: i, whole: true})
			}
			continue
		}
		// Segments to restore: what the scrub attributed, UNIONED with a
		// fresh-signature recheck — float corruption that landed between
		// the scrub and this repair must not be re-thresholded into the
		// planes and re-signed as healthy. A version that moved since
		// the scrub without an announced/trusted mutation behind it is
		// the same hazard with no attribution: restore the learner
		// wholesale rather than bless unexplained memory.
		if sigs[i].version != e.sig.version &&
			!mo.cfg.TrustVersioned && !e.hasMatchingPending(&sigs[i]) &&
			!e.pendingNewerThan(sigs[i].version) {
			needFloat = append(needFloat, floatNeed{learner: i, whole: true})
			continue
		}
		segBad := append([]bool(nil), e.floatBad...)
		if sigs[i].version == e.sig.version {
			for _, s := range floatBadSegs(&e.sig, &sigs[i], nil) {
				segBad[s] = true
			}
		}
		var segs []int
		for s, bad := range segBad {
			if bad {
				segs = append(segs, s)
			}
		}
		if len(segs) > 0 {
			needFloat = append(needFloat, floatNeed{learner: i, segs: segs})
		}
	}
	report.Source = "rethreshold"

	failed := map[int]bool{}
	fail := func(learners []int, err error) {
		for _, i := range learners {
			if !failed[i] {
				failed[i] = true
			}
		}
		mo.failRepair(&report, learners, err)
	}
	if len(needFloat) > 0 {
		floatLearners := make([]int, len(needFloat))
		for k, nd := range needFloat {
			floatLearners[k] = nd.learner
		}
		switch {
		case mo.cfg.CheckpointPath != "" && mo.ckptArmed:
			// The checkpoint read is disk I/O that can be slow at paper
			// scale: release the state lock so Status keeps answering.
			mo.mu.Unlock()
			ckpt, err := loadCheckpointModel(mo.cfg.CheckpointPath)
			mo.mu.Lock()
			if err == nil {
				err = compatible(mo.base, ckpt)
			}
			if err != nil {
				// A bad or missing checkpoint dooms only the learners
				// that needed it; plane-only learners still heal below.
				fail(floatLearners, err)
				break
			}
			restored := false
			for _, nd := range needFloat {
				// The checkpoint model is private to this call, so its
				// class vectors can be read directly; the restore goes
				// through the live learner's write lock either way.
				//hdlint:ignore locksafety checkpoint model is private to this call; no concurrent readers
				src := ckpt.Learners[nd.learner].Class
				var err error
				if nd.whole {
					err = mo.base.Learners[nd.learner].SetClass(src)
				} else {
					ranges := make([][2]int, len(nd.segs))
					for k, s := range nd.segs {
						lo, hi := segDimRange(mo.ledger[nd.learner].dims, segWords, s)
						ranges[k] = [2]int{lo, hi}
					}
					err = mo.base.Learners[nd.learner].RestoreSegments(src, ranges)
					if err == nil {
						report.Segments += len(nd.segs)
					}
				}
				if err != nil {
					fail([]int{nd.learner}, err)
					continue
				}
				restored = true
			}
			if restored {
				report.Source = "checkpoint"
			}
		case mo.cfg.Trainer != nil:
			return mo.repairViaTrainerLocked(report, affected)
		default:
			// Float corruption with no restore source (never
			// configured, or disarmed because the serving model no
			// longer derives from the configured checkpoint): those
			// learners stay masked; plane-only learners can still heal.
			fail(floatLearners,
				fmt.Errorf("reliability: float memory corrupted and no armed checkpoint or trainer to restore from"))
		}
	}

	if len(failed) == len(affected) {
		// Nothing left to heal this pass: skip the re-threshold,
		// re-sign, and canary sweep a doomed retry would pay.
		report.Reason = "no repair source for any quarantined learner"
		return report, nil
	}

	// Candidate state: the repaired learners' masks cleared, everything
	// else (including this pass's failures) kept. The canary verifies
	// each repaired learner at the fidelity it would serve at.
	candMasked := append([]bool(nil), mo.masked...)
	var candHealthy [][]uint64
	var remaining []int // non-failed affected learners: re-thresholded, verified, unmasked below
	for _, i := range affected {
		if failed[i] {
			if e := mo.ledger[i]; !e.quarantined && e.hasDimMask() {
				if candHealthy == nil {
					candHealthy = make([][]uint64, len(mo.ledger))
				}
				candHealthy[i] = e.healthyMask(segWords)
			}
			continue
		}
		candMasked[i] = false
		remaining = append(remaining, i)
	}

	// The verification sweep — surgical re-threshold, re-sign, canary —
	// walks model memory: run it with the state lock released (like
	// Scrub's heavy reads) so Status keeps answering. passMu keeps the
	// state this block reads stable.
	cur, base := mo.cur, mo.base
	canaryX, canaryY := mo.canaryX, mo.canaryY
	mo.mu.Unlock()
	var rethErr error
	if bin != nil {
		// Re-threshold the repaired learners' quantized memory from
		// their (now clean) float memory: heals silent plane
		// corruption, which never bumps versions and so would survive a
		// version-gated refresh. Only the learners under repair are
		// re-quantized; unrepaired learners keep their (masked) planes.
		rethErr = bin.Rethreshold(remaining...)
	}
	var fresh []learnerSig
	var canary []float64
	var canaryErr error
	if rethErr == nil {
		fresh = signModel(base, cur.Binary(), segWords)
		if len(canaryX) > 0 {
			candEng, err := infer.RemaskDims(cur, base, candMasked, candHealthy)
			if err != nil {
				canaryErr = err
			} else {
				canary, canaryErr = candEng.EvaluateLearners(canaryX, canaryY)
			}
		}
	}
	mo.mu.Lock()
	if rethErr != nil {
		fail(remaining, rethErr)
		return report, rethErr
	}
	if canaryErr != nil {
		fail(remaining, canaryErr)
		return report, canaryErr
	}
	for _, i := range remaining {
		e := mo.ledger[i]
		if canary != nil {
			e.last = canary[i]
			if e.hasCanary && e.baseline-canary[i] > mo.cfg.QuarantineDrop {
				// Restored memory still scores collapsed: the damage is
				// upstream of what this pass can fix.
				report.Failed = append(report.Failed, i)
				mo.repairFails.Add(1)
				continue
			}
			e.baseline = canary[i]
		}
		e.sig = fresh[i]
		e.quarantined = false
		e.canarySuspect = false
		e.pending = nil
		e.suspect = 0
		for s := range e.maskedSeg {
			e.maskedSeg[s] = false
			e.floatBad[s] = false
			e.planeBad[s] = false
		}
		mo.masked[i] = false
		e.repairs++
		mo.repairs.Add(1)
		report.Repaired = append(report.Repaired, i)
	}
	if len(report.Repaired) > 0 {
		mo.journal(obs.Event{Type: obs.EvRepair, Learners: report.Repaired,
			Detail: fmt.Sprintf("source=%s segments=%d", report.Source, report.Segments)})
		mo.journal(obs.Event{Type: obs.EvUnmask, Learners: report.Repaired,
			Detail: "restored to full vote"})
		swapped, err := mo.installMaskLocked()
		if err != nil {
			mo.lastErr = err.Error()
			return report, err
		}
		report.Swapped = swapped
		mo.lastErr = ""
	}
	return report, nil
}

// repairFrozenLocked handles the frozen-binary case: no float memory
// exists, so the only repair is a wholesale reload of the verified
// checkpoint. The load (disk + quantization for a float checkpoint)
// runs with the state lock released; the install goes through the
// compare-and-swap so a swap that landed in between is not reverted.
func (mo *Monitor) repairFrozenLocked(report RepairReport, affected []int) (RepairReport, error) {
	if mo.cfg.CheckpointPath == "" || !mo.ckptArmed {
		report.Reason = "frozen binary snapshot and no armed checkpoint to reload"
		err := mo.failRepair(&report, affected, fmt.Errorf("reliability: %s", report.Reason))
		return report, err
	}
	mo.mu.Unlock()
	eng, err := serve.LoadEngine(mo.cfg.CheckpointPath, "binary")
	mo.mu.Lock()
	if err != nil {
		rerr := mo.failRepair(&report, affected, err)
		return report, rerr
	}
	// Re-validate at repair time: the file may have been rotated since
	// it was armed, and a wholesale reload must not change the serving
	// contract.
	if err := compatible(mo.base, eng.Model()); err != nil {
		rerr := mo.failRepair(&report, affected, err)
		return report, rerr
	}
	swapped, err := mo.srv.SwapIf(mo.cur, eng)
	if err != nil {
		rerr := mo.failRepair(&report, affected, err)
		return report, rerr
	}
	if !swapped {
		// The serving engine changed hands while the checkpoint loaded
		// (operator swap, trainer retrain): the reload must not revert
		// it. The next scrub adopts the new engine and re-evaluates.
		report.Reason = "serving engine changed hands mid-repair; deferring to next scrub"
		return report, nil
	}
	mo.adoptLocked(eng)
	report.Source = "checkpoint"
	report.Repaired = affected
	report.Swapped = true
	mo.repairs.Add(uint64(len(affected)))
	mo.lastErr = ""
	mo.journal(obs.Event{Type: obs.EvRepair, Learners: affected,
		Detail: "source=checkpoint (frozen snapshot reload)"})
	mo.journal(obs.Event{Type: obs.EvUnmask, Learners: affected,
		Detail: "restored to full vote"})
	return report, nil
}

// repairViaTrainerLocked rebuilds the whole ensemble through the
// trainer's hot-retrain path and adopts the result. The retrain is a
// full refit that can run for minutes at paper scale, so the state
// lock is released for its duration — passMu (held by the caller)
// keeps other passes out, while Status keeps answering; the trainer
// installs the result through its own retrain-atomic swap path.
func (mo *Monitor) repairViaTrainerLocked(report RepairReport, affected []int) (RepairReport, error) {
	report.Source = "trainer"
	mo.mu.Unlock()
	rr, err := mo.cfg.Trainer.Retrain()
	mo.mu.Lock()
	if err != nil {
		rerr := mo.failRepair(&report, affected, err)
		return report, rerr
	}
	if !rr.Swapped {
		report.Reason = "trainer retrain skipped: " + rr.Reason
		err := mo.failRepair(&report, affected, fmt.Errorf("reliability: %s", report.Reason))
		return report, err
	}
	mo.adoptLocked(mo.srv.Engine())
	// The refit model no longer derives from the configured checkpoint;
	// checkpoint repair stays off until SetCheckpoint re-arms it.
	mo.ckptArmed = false
	report.Repaired = affected
	report.Swapped = true
	mo.repairs.Add(uint64(len(affected)))
	mo.lastErr = ""
	mo.journal(obs.Event{Type: obs.EvRepair, Learners: affected,
		Detail: "source=trainer retrain"})
	mo.journal(obs.Event{Type: obs.EvUnmask, Learners: affected,
		Detail: "restored to full vote"})
	return report, nil
}

// failRepair marks the listed learners failed on the report, counts
// the failed attempts, and records the error for Status.
func (mo *Monitor) failRepair(report *RepairReport, failed []int, err error) error {
	report.Failed = append(report.Failed, failed...)
	mo.repairFails.Add(uint64(len(failed)))
	mo.lastErr = err.Error()
	mo.journal(obs.Event{Type: obs.EvRepair, Learners: failed,
		Detail: "failed: " + err.Error()})
	return err
}

// journal appends an event stamped with the running pass's correlation
// ID. Without a configured journal it is a no-op; the journal mutex is
// a leaf, so appending with mo.mu held is safe.
func (mo *Monitor) journal(e obs.Event) {
	if mo.cfg.Journal == nil {
		return
	}
	e.Corr = mo.passCorr
	mo.cfg.Journal.Append(e)
}

// Status snapshots the health ledger and counters for /reliability and
// the healthz reliability block.
func (mo *Monitor) Status() serve.ReliabilityStatus {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	st := serve.ReliabilityStatus{
		Learners:     len(mo.ledger),
		SegmentWords: mo.cfg.SegmentWords,
		Scrubs:       mo.scrubs.Load(),
		Detections:   mo.detections.Load(),
		Quarantines:  mo.quarantines.Load(),
		Repairs:      mo.repairs.Load(),
		RepairFails:  mo.repairFails.Load(),
		CanaryRows:   len(mo.canaryX),
		LastScrubMS:  mo.lastScrubMS,
		LastError:    mo.lastErr,
	}
	st.Ledger = make([]serve.LearnerHealth, len(mo.ledger))
	for i, e := range mo.ledger {
		h := serve.LearnerHealth{
			State:           "healthy",
			HealthyFraction: 1,
			IntegrityFaults: e.integrityFaults,
			CanaryFaults:    e.canaryFaults,
			Repairs:         e.repairs,
		}
		if e.hasCanary {
			h.CanaryBaseline, h.CanaryLast = e.baseline, e.last
		}
		switch {
		case e.quarantined:
			h.State = "quarantined"
			h.HealthyFraction = 0
			st.Quarantined = append(st.Quarantined, i)
		case e.hasDimMask():
			h.State = "degraded"
			h.MaskedWords = e.maskedWords(mo.cfg.SegmentWords)
			h.HealthyFraction = e.healthyFraction(mo.cfg.SegmentWords)
			st.MaskedWords += h.MaskedWords
			st.DimMasked = append(st.DimMasked, i)
		}
		st.Ledger[i] = h
	}
	st.Degraded = len(st.Quarantined) > 0 || len(st.DimMasked) > 0
	return st
}

// Start launches the background scrub loop (no-op when ScrubEvery is
// zero or a loop already runs). Each tick scrubs and, when anything is
// masked and a repair source exists, repairs; errors are recorded in
// Status rather than stopping the loop.
func (mo *Monitor) Start() {
	if mo.cfg.ScrubEvery <= 0 {
		return
	}
	mo.loopMu.Lock()
	defer mo.loopMu.Unlock()
	if mo.stop != nil {
		return
	}
	mo.stop = make(chan struct{})
	mo.done = make(chan struct{})
	go mo.loop(mo.stop, mo.done)
}

func (mo *Monitor) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(mo.cfg.ScrubEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			report, err := mo.Scrub()
			if err != nil {
				continue
			}
			if report.Adopted {
				continue
			}
			if mo.autoRepairable() {
				st := mo.Status()
				if len(st.Quarantined) > 0 || len(st.DimMasked) > 0 {
					_, _ = mo.Repair()
				}
			}
		}
	}
}

// autoRepairable reports whether the background loop should attempt a
// repair: a repair source must exist for the current backend, and the
// previous attempt must not have been a total failure that nothing has
// changed since (retrying those only burns a full re-threshold pass
// per tick and inflates the failure counters).
func (mo *Monitor) autoRepairable() bool {
	mo.mu.Lock()
	stuck := mo.autoStuck
	bin := mo.cur.Binary()
	ckpt := mo.cfg.CheckpointPath != "" && mo.ckptArmed
	trainer := mo.cfg.Trainer != nil
	mo.mu.Unlock()
	if stuck {
		return false
	}
	if ckpt || trainer {
		return true
	}
	return bin != nil && !bin.Frozen() // plane corruption re-thresholds from float memory
}

// Stop halts the background loop and waits for an in-flight pass to
// finish. Safe to call without Start and more than once.
func (mo *Monitor) Stop() {
	mo.loopMu.Lock()
	stop, done := mo.stop, mo.done
	mo.stop, mo.done = nil, nil
	mo.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// loadCheckpointModel reads a float ensemble checkpoint from disk.
func loadCheckpointModel(path string) (*boosthd.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return boosthd.Load(f)
}

// compatible verifies that a checkpoint's geometry matches the live
// model's, so a per-learner restore cannot graft vectors from a
// different hyperspace.
func compatible(live, ckpt *boosthd.Model) error {
	switch {
	case ckpt.Cfg.TotalDim != live.Cfg.TotalDim,
		ckpt.Cfg.NumLearners != live.Cfg.NumLearners,
		ckpt.Cfg.Classes != live.Cfg.Classes:
		return fmt.Errorf("checkpoint geometry %d/%d/%d does not match live model %d/%d/%d",
			ckpt.Cfg.TotalDim, ckpt.Cfg.NumLearners, ckpt.Cfg.Classes,
			live.Cfg.TotalDim, live.Cfg.NumLearners, live.Cfg.Classes)
	case ckpt.InputDim() != live.InputDim():
		return fmt.Errorf("checkpoint feature width %d does not match live model %d", ckpt.InputDim(), live.InputDim())
	case ckpt.Gamma() != live.Gamma():
		return fmt.Errorf("checkpoint encoder bandwidth %v does not match live model %v", ckpt.Gamma(), live.Gamma())
	}
	return nil
}
