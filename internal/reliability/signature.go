package reliability

import (
	"math"

	"boosthd/internal/boosthd"
	"boosthd/internal/hdc"
	"boosthd/internal/infer"
	"boosthd/internal/par"
)

// FNV-1a 64-bit constants: the digest folds whole 64-bit words instead
// of bytes, trading the reference formulation for an 8x cheaper pass —
// the scrubber walks the entire model memory every period, so the fold
// must run at word speed.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fold accumulates one storage word into an (XOR parity, position-mixed
// digest) signature pair. The parity word is the classic scrub check —
// one machine instruction per word, and any odd number of flips in a
// bit lane shows immediately. Its blind spot (an even number of flips
// in the same lane across words) is covered by the multiplicative
// digest, which mixes word position into every step, so the pair
// detects any realistic fault pattern while still costing two ALU ops
// per word.
func fold(parity, digest, word uint64) (uint64, uint64) {
	return parity ^ word, (digest ^ word) * fnvPrime
}

// foldWords signs a packed plane.
func foldWords(words []uint64) (parity, digest uint64) {
	digest = fnvOffset
	for _, w := range words {
		parity, digest = fold(parity, digest, w)
	}
	return parity, digest
}

// foldFloats signs a float class hypervector over its IEEE-754 bit
// patterns — the stored representation the fault model flips.
func foldFloats(v hdc.Vector) (parity, digest uint64) {
	digest = fnvOffset
	for _, x := range v {
		parity, digest = fold(parity, digest, math.Float64bits(x))
	}
	return parity, digest
}

// planeSig is the signature of one (learner, class) pair of quantized
// planes: parity + digest over the sign plane and the confidence mask.
type planeSig struct {
	signParity, signDigest uint64
	maskParity, maskDigest uint64
}

// learnerSig is one weak learner's integrity signature: the version the
// memory was signed at, per-class checksums over the float class
// vectors, and — when a packed-binary backend serves — per-class parity
// words over its quantized planes.
type learnerSig struct {
	version uint64

	hasFloat    bool
	classParity []uint64
	classDigest []uint64

	hasPlanes    bool
	planeVersion uint64
	planes       []planeSig
}

// floatEqual reports whether the float-memory halves of two signatures
// match.
func (s *learnerSig) floatEqual(o *learnerSig) bool {
	if s.hasFloat != o.hasFloat || len(s.classParity) != len(o.classParity) {
		return false
	}
	for c := range s.classParity {
		if s.classParity[c] != o.classParity[c] || s.classDigest[c] != o.classDigest[c] {
			return false
		}
	}
	return true
}

// planesEqual reports whether the quantized-plane halves of two
// signatures match.
func (s *learnerSig) planesEqual(o *learnerSig) bool {
	if s.hasPlanes != o.hasPlanes || len(s.planes) != len(o.planes) {
		return false
	}
	for c := range s.planes {
		if s.planes[c] != o.planes[c] {
			return false
		}
	}
	return true
}

// signModel computes the integrity signatures of every learner of the
// serving engine: float class-vector checksums from the model behind it
// (skipped for a frozen binary snapshot, which has no float memory) and
// quantized-plane parities from the binary backend when one serves.
// Each learner's float memory is read under its read lock, so every
// signature records a consistent (version, contents) pair; learners are
// signed in parallel — the scrub walks the whole model memory, which is
// exactly the data-parallel shape internal/par exists for.
func signModel(m *boosthd.Model, bin *infer.BinaryModel) []learnerSig {
	sigs := make([]learnerSig, len(m.Learners))
	hasFloat := bin == nil || !bin.Frozen()
	if hasFloat {
		_ = par.ForEach(len(m.Learners), func(i int) error {
			m.Learners[i].ReadClass(func(class []hdc.Vector, version uint64) {
				s := &sigs[i]
				s.version = version
				s.hasFloat = true
				s.classParity = make([]uint64, len(class))
				s.classDigest = make([]uint64, len(class))
				for c, cv := range class {
					s.classParity[c], s.classDigest[c] = foldFloats(cv)
				}
			})
			return nil
		})
	}
	if bin != nil {
		classes := m.Cfg.Classes
		for i := range sigs {
			sigs[i].hasPlanes = true
			sigs[i].planes = make([]planeSig, classes)
		}
		bin.ReadPlanes(func(learner, class int, version uint64, sign, mask []uint64) {
			s := &sigs[learner]
			s.planeVersion = version
			p := &s.planes[class]
			p.signParity, p.signDigest = foldWords(sign)
			p.maskParity, p.maskDigest = foldWords(mask)
		})
	}
	return sigs
}
