package reliability

import (
	"math"

	"boosthd/internal/boosthd"
	"boosthd/internal/hdc"
	"boosthd/internal/infer"
	"boosthd/internal/onlinehd"
	"boosthd/internal/par"
)

// FNV-1a 64-bit constants: the digest folds whole 64-bit words instead
// of bytes, trading the reference formulation for an 8x cheaper pass —
// the scrubber walks the entire model memory every period, so the fold
// must run at word speed.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// DefaultSegmentWords is the signature segment width when Config leaves
// it zero: 8 packed 64-bit words = 512 dimensions per segment. Each
// segment stores one parity word plus one digest word, a 2/SegmentWords
// storage overhead (25% at the default; 16 matches SEC-DED's 12.5%),
// bought back as attribution: the scrubber localizes corruption to a
// segment instead of condemning a whole learner.
const DefaultSegmentWords = 8

// fold accumulates one storage word into an (XOR parity, position-mixed
// digest) signature pair. The parity word is the classic scrub check —
// one machine instruction per word, and any odd number of flips in a
// bit lane shows immediately. Its blind spot (an even number of flips
// in the same lane across words) is covered by the multiplicative
// digest, which mixes word position into every step, so the pair
// detects any realistic fault pattern while still costing two ALU ops
// per word.
func fold(parity, digest, word uint64) (uint64, uint64) {
	return parity ^ word, (digest ^ word) * fnvPrime
}

// segSig is the signature of one fixed-size word block: dimension
// segment s of a learner covers local dimensions
// [s*64*segWords, (s+1)*64*segWords), i.e. packed-plane words
// [s*segWords, (s+1)*segWords) and the same range of float components
// (one IEEE-754 word per dimension). Keeping float and plane segments
// aligned on the same dimension ranges is what lets the scrubber
// attribute corruption in either representation to one dimension range
// and quarantine exactly those words out of the serving masks.
type segSig struct{ parity, digest uint64 }

// segsFor returns the number of dimension segments of a dims-wide
// learner under segWords-word segments.
func segsFor(dims, segWords int) int {
	words := (dims + 63) / 64
	return (words + segWords - 1) / segWords
}

// segDimRange returns the [lo,hi) local-dimension range of segment s.
func segDimRange(dims, segWords, s int) (lo, hi int) {
	lo = s * segWords * 64
	hi = lo + segWords*64
	if hi > dims {
		hi = dims
	}
	return lo, hi
}

// segMask builds the packed healthy-dimension mask of a dims-wide
// learner with the listed segments masked out (every other bit set) —
// the one place segment indexes turn into mask words, shared by the
// serving-mask build and the criticality baseline so they can never
// disagree about which words a segment covers.
func segMask(dims, segWords int, masked []int) []uint64 {
	words := (dims + 63) / 64
	out := make([]uint64, words)
	for w := range out {
		out[w] = ^uint64(0)
	}
	for _, s := range masked {
		lo := s * segWords
		hi := lo + segWords
		if hi > words {
			hi = words
		}
		for w := lo; w < hi; w++ {
			out[w] = 0
		}
	}
	return out
}

// foldFloatSegs signs a float class hypervector per dimension segment
// over its IEEE-754 bit patterns — the stored representation the fault
// model flips.
func foldFloatSegs(v hdc.Vector, segWords int) []segSig {
	out := make([]segSig, segsFor(len(v), segWords))
	for s := range out {
		lo, hi := segDimRange(len(v), segWords, s)
		var parity uint64
		digest := fnvOffset
		for _, x := range v[lo:hi] {
			parity, digest = fold(parity, digest, math.Float64bits(x))
		}
		out[s] = segSig{parity, digest}
	}
	return out
}

// foldWordSegs signs a packed plane per dimension segment. dims (not
// len(words)) drives the segment count so float and plane signatures of
// one learner always agree on segment indexing.
func foldWordSegs(words []uint64, dims, segWords int) []segSig {
	out := make([]segSig, segsFor(dims, segWords))
	for s := range out {
		lo := s * segWords
		hi := lo + segWords
		if hi > len(words) {
			hi = len(words)
		}
		var parity uint64
		digest := fnvOffset
		for _, w := range words[lo:hi] {
			parity, digest = fold(parity, digest, w)
		}
		out[s] = segSig{parity, digest}
	}
	return out
}

// learnerSig is one weak learner's integrity signature: the version the
// memory was signed at and per-class, per-segment checksums over the
// float class vectors, plus — when a packed-binary backend serves —
// per-class, per-segment parities over its quantized sign and mask
// planes.
type learnerSig struct {
	dims     int
	segWords int

	version   uint64
	hasFloat  bool
	classSegs [][]segSig // [class][segment] over float class vectors

	hasPlanes    bool
	planeVersion uint64
	signSegs     [][]segSig // [class][segment] over packed sign planes
	maskSegs     [][]segSig // [class][segment] over confidence masks
}

// segsEqual reports whether two per-class segment tables match at
// segment s across every class.
func segsEqual(a, b [][]segSig, s int) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if a[c][s] != b[c][s] {
			return false
		}
	}
	return true
}

// tableEqual reports whether two per-class segment tables match fully.
func tableEqual(a, b [][]segSig) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if len(a[c]) != len(b[c]) {
			return false
		}
		for s := range a[c] {
			if a[c][s] != b[c][s] {
				return false
			}
		}
	}
	return true
}

// floatEqual reports whether the float-memory halves of two signatures
// match (every class, every segment).
func (s *learnerSig) floatEqual(o *learnerSig) bool {
	return s.hasFloat == o.hasFloat && tableEqual(s.classSegs, o.classSegs)
}

// planesEqual reports whether the quantized-plane halves of two
// signatures match.
func (s *learnerSig) planesEqual(o *learnerSig) bool {
	return s.hasPlanes == o.hasPlanes &&
		tableEqual(s.signSegs, o.signSegs) && tableEqual(s.maskSegs, o.maskSegs)
}

// segs returns the learner's dimension-segment count.
func (s *learnerSig) segs() int { return segsFor(s.dims, s.segWords) }

// floatBadSegs returns the dimension segments whose float signatures
// differ between ref and cur, skipping segments already masked (their
// reference values describe the pre-corruption memory on purpose — the
// repair target — so they mismatch until repaired).
func floatBadSegs(ref, cur *learnerSig, skip []bool) []int {
	if !ref.hasFloat || !cur.hasFloat {
		return nil
	}
	var bad []int
	for s := 0; s < ref.segs(); s++ {
		if skip != nil && skip[s] {
			continue
		}
		if !segsEqual(ref.classSegs, cur.classSegs, s) {
			bad = append(bad, s)
		}
	}
	return bad
}

// planeBadSegs is floatBadSegs over the quantized sign and mask planes.
func planeBadSegs(ref, cur *learnerSig, skip []bool) []int {
	if !ref.hasPlanes || !cur.hasPlanes {
		return nil
	}
	var bad []int
	for s := 0; s < ref.segs(); s++ {
		if skip != nil && skip[s] {
			continue
		}
		if !segsEqual(ref.signSegs, cur.signSegs, s) || !segsEqual(ref.maskSegs, cur.maskSegs, s) {
			bad = append(bad, s)
		}
	}
	return bad
}

// signFloatLearner signs one learner's float class memory under its
// read lock — the trainer→monitor handoff unit: a streaming update
// that legitimately moved this learner is followed by a fresh signature
// of exactly this learner, so strict scrubbing can keep treating
// unannounced version movement as corruption.
func signFloatLearner(l *onlinehd.HVClassifier, segWords int) learnerSig {
	sig := learnerSig{dims: l.Dim, segWords: segWords}
	l.ReadClass(func(class []hdc.Vector, version uint64) {
		sig.version = version
		sig.hasFloat = true
		sig.classSegs = make([][]segSig, len(class))
		for c, cv := range class {
			sig.classSegs[c] = foldFloatSegs(cv, segWords)
		}
	})
	return sig
}

// signModel computes the integrity signatures of every learner of the
// serving engine: float class-vector checksums from the model behind it
// (skipped for a frozen binary snapshot, which has no float memory) and
// quantized-plane parities from the binary backend when one serves —
// all segmented, so a mismatch names the corrupted dimension range
// rather than just the learner. Each learner's float memory is read
// under its read lock, so every signature records a consistent
// (version, contents) pair; learners are signed in parallel — the scrub
// walks the whole model memory, which is exactly the data-parallel
// shape internal/par exists for.
func signModel(m *boosthd.Model, bin *infer.BinaryModel, segWords int) []learnerSig {
	sigs := make([]learnerSig, len(m.Learners))
	for i, l := range m.Learners {
		sigs[i].dims = l.Dim
		sigs[i].segWords = segWords
	}
	hasFloat := bin == nil || !bin.Frozen()
	if hasFloat {
		_ = par.ForEach(len(m.Learners), func(i int) error {
			sigs[i] = signFloatLearner(m.Learners[i], segWords)
			return nil
		})
	}
	if bin != nil {
		classes := m.Cfg.Classes
		for i := range sigs {
			sigs[i].hasPlanes = true
			sigs[i].signSegs = make([][]segSig, classes)
			sigs[i].maskSegs = make([][]segSig, classes)
		}
		bin.ReadPlanes(func(learner, class int, version uint64, sign, mask []uint64) {
			s := &sigs[learner]
			s.planeVersion = version
			s.signSegs[class] = foldWordSegs(sign, s.dims, segWords)
			s.maskSegs[class] = foldWordSegs(mask, s.dims, segWords)
		})
	}
	return sigs
}
