package reliability

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boosthd/internal/boosthd"
	"boosthd/internal/faults"
	"boosthd/internal/infer"
	"boosthd/internal/serve"
)

func newMonitorOver(t testing.TB, m *boosthd.Model, cfg Config) (*serve.Server, *Monitor) {
	t.Helper()
	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	mo, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, mo
}

// TestStateRoundTrip: fault history, canary baselines, criticality
// baselines, and subsystem counters survive a save/load cycle into a
// fresh monitor — the restart continuity the health ledger exists for.
func TestStateRoundTrip(t *testing.T) {
	m, X, y := fixture(t, 640, 4)
	_, mo := newMonitorOver(t, m, Config{})
	if err := mo.SetCanary(X[:60], y[:60]); err != nil {
		t.Fatal(err)
	}

	// Accumulate real history: corrupt a learner, scrub to detect it.
	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	corruptLearner(t, m, 1, inj)
	if _, err := mo.Scrub(); err != nil {
		t.Fatal(err)
	}
	before := mo.Status()
	if before.Detections == 0 {
		t.Fatal("fixture: scrub detected nothing; state has no history to persist")
	}

	path := filepath.Join(t.TempDir(), "state.json")
	if err := mo.SaveState(path); err != nil {
		t.Fatal(err)
	}

	// A fresh process: same model geometry, new monitor, canary set first
	// (the documented call order), then the persisted ledger wins.
	m2, X2, y2 := fixture(t, 640, 4)
	_, mo2 := newMonitorOver(t, m2, Config{})
	if err := mo2.SetCanary(X2[:60], y2[:60]); err != nil {
		t.Fatal(err)
	}
	if err := mo2.LoadState(path); err != nil {
		t.Fatal(err)
	}
	after := mo2.Status()
	if after.Scrubs != before.Scrubs || after.Detections != before.Detections ||
		after.Quarantines != before.Quarantines || after.Repairs != before.Repairs ||
		after.RepairFails != before.RepairFails {
		t.Fatalf("counters: saved %+v, restored %+v", before, after)
	}
	if len(after.Ledger) != len(before.Ledger) {
		t.Fatalf("ledger length %d, want %d", len(after.Ledger), len(before.Ledger))
	}
	for i := range before.Ledger {
		b, a := before.Ledger[i], after.Ledger[i]
		if a.IntegrityFaults != b.IntegrityFaults || a.CanaryFaults != b.CanaryFaults ||
			a.Repairs != b.Repairs {
			t.Fatalf("learner %d fault history: saved %+v, restored %+v", i, b, a)
		}
		if a.CanaryBaseline != b.CanaryBaseline || a.CanaryLast != b.CanaryLast {
			t.Fatalf("learner %d canary baselines: saved %+v, restored %+v", i, b, a)
		}
		// Quarantine/mask state is deliberately process-local: the fresh
		// monitor's memory is clean, so nothing may be masked after load.
		if a.State != "healthy" {
			t.Fatalf("learner %d restored as %q; masks must not persist across restarts", i, a.State)
		}
	}
}

// TestStateGeometryGuard: a state file from a different model shape (or
// signature granularity) is rejected loudly, and the live ledger stays
// untouched.
func TestStateGeometryGuard(t *testing.T) {
	m, X, y := fixture(t, 640, 4)
	_, mo := newMonitorOver(t, m, Config{})
	if err := mo.SetCanary(X[:60], y[:60]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.json")
	if err := mo.SaveState(path); err != nil {
		t.Fatal(err)
	}

	// Different learner count.
	m5, _, _ := fixture(t, 640, 5)
	_, mo5 := newMonitorOver(t, m5, Config{})
	if err := mo5.LoadState(path); err == nil || !strings.Contains(err.Error(), "learners") {
		t.Fatalf("learner-count mismatch accepted: %v", err)
	}
	// Different per-learner dims.
	m2, _, _ := fixture(t, 1280, 4)
	_, mo2 := newMonitorOver(t, m2, Config{})
	if err := mo2.LoadState(path); err == nil || !strings.Contains(err.Error(), "dims") {
		t.Fatalf("dim mismatch accepted: %v", err)
	}
	// Different signature segment width.
	mw, _, _ := fixture(t, 640, 4)
	_, mow := newMonitorOver(t, mw, Config{SegmentWords: 1})
	if err := mow.LoadState(path); err == nil || !strings.Contains(err.Error(), "segment width") {
		t.Fatalf("segment-width mismatch accepted: %v", err)
	}
	// Missing file surfaces os.ErrNotExist so callers can treat a fresh
	// start silently.
	if err := mo.LoadState(filepath.Join(t.TempDir(), "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing state file: %v", err)
	}
	// Garbage is a loud parse error.
	bad := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mo.LoadState(bad); err == nil {
		t.Fatal("garbage state file accepted")
	}
}

// TestStatePersistedOnScrub: with StatePath configured every scrub pass
// writes the ledger through — the durability contract behind
// -checkpoint-dir restarts.
func TestStatePersistedOnScrub(t *testing.T) {
	m, X, y := fixture(t, 640, 4)
	path := filepath.Join(t.TempDir(), "state.json")
	_, mo := newMonitorOver(t, m, Config{StatePath: path})
	if err := mo.SetCanary(X[:60], y[:60]); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("state file exists before any pass: %v", err)
	}
	if _, err := mo.Scrub(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("scrub did not persist state: %v", err)
	}
	// The written file round-trips into a compatible monitor.
	m2, _, _ := fixture(t, 640, 4)
	_, mo2 := newMonitorOver(t, m2, Config{})
	if err := mo2.LoadState(path); err != nil {
		t.Fatal(err)
	}
	if got, want := mo2.Status().Scrubs, mo.Status().Scrubs; got != want {
		t.Fatalf("restored scrub counter %d, want %d", got, want)
	}
	// Repair passes persist too (no-op repair still rewrites the file).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := mo.Repair(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("repair did not persist state: %v", err)
	}
}
