package reliability

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// persistedLearner is one ledger row's durable slice: the fault history
// and the canary/criticality baselines. Quarantine and dimension-mask
// state is deliberately NOT persisted — masks describe corruption in a
// specific process's memory, and a restart reloads the model from its
// checkpoint, so carrying masks across would quarantine healthy memory.
type persistedLearner struct {
	Dims            int       `json:"dims"`
	IntegrityFaults uint64    `json:"integrity_faults,omitempty"`
	CanaryFaults    uint64    `json:"canary_faults,omitempty"`
	Repairs         uint64    `json:"repairs,omitempty"`
	HasCanary       bool      `json:"has_canary,omitempty"`
	Baseline        float64   `json:"canary_baseline,omitempty"`
	Last            float64   `json:"canary_last,omitempty"`
	HasCrit         bool      `json:"has_crit,omitempty"`
	Crit            []float64 `json:"criticality,omitempty"`
}

// persistedState is the reliability monitor's durable snapshot.
type persistedState struct {
	// ModelFingerprint is informational (the base model's content hash at
	// save time); loading guards on geometry, not the fingerprint —
	// streaming online updates legitimately move the memory between a
	// save and the next start, and the fault history stays meaningful for
	// the same deployment.
	ModelFingerprint string             `json:"model_fingerprint"`
	SegmentWords     int                `json:"segment_words"`
	SavedAt          string             `json:"saved_at"`
	Learners         []persistedLearner `json:"learners"`
	Scrubs           uint64             `json:"scrubs"`
	Detections       uint64             `json:"detections"`
	Quarantines      uint64             `json:"quarantines"`
	Repairs          uint64             `json:"repairs"`
	RepairFails      uint64             `json:"repair_failures"`
}

// SaveState persists the health ledger and criticality baselines to
// path, atomically (temp file + rename). The monitor keeps answering
// while the snapshot is taken; only the state capture holds the lock.
func (mo *Monitor) SaveState(path string) error {
	if path == "" {
		return fmt.Errorf("reliability: save state: empty path")
	}
	mo.mu.Lock()
	st := persistedState{
		ModelFingerprint: fmt.Sprintf("%016x", mo.base.Fingerprint()),
		SegmentWords:     mo.cfg.SegmentWords,
		SavedAt:          time.Now().UTC().Format(time.RFC3339),
		Learners:         make([]persistedLearner, len(mo.ledger)),
		Scrubs:           mo.scrubs.Load(),
		Detections:       mo.detections.Load(),
		Quarantines:      mo.quarantines.Load(),
		Repairs:          mo.repairs.Load(),
		RepairFails:      mo.repairFails.Load(),
	}
	for i, e := range mo.ledger {
		st.Learners[i] = persistedLearner{
			Dims:            e.dims,
			IntegrityFaults: e.integrityFaults,
			CanaryFaults:    e.canaryFaults,
			Repairs:         e.repairs,
			HasCanary:       e.hasCanary,
			Baseline:        e.baseline,
			Last:            e.last,
			HasCrit:         e.hasCrit,
			Crit:            append([]float64(nil), e.crit...),
		}
	}
	mo.mu.Unlock()

	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return fmt.Errorf("reliability: save state: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".reliability_state-*.json")
	if err != nil {
		return fmt.Errorf("reliability: save state: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("reliability: save state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("reliability: save state: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("reliability: save state: %w", err)
	}
	return nil
}

// LoadState restores a persisted health ledger: per-learner fault
// counters, canary baselines, and segment-criticality baselines, plus
// the subsystem counters. The state must match the live geometry —
// learner count, per-learner dimensions, and signature segment width —
// or the load is rejected loudly (a state file from a different model
// shape describes different learners).
//
// Call order matters when a canary is configured: SetCanary recomputes
// fresh baselines, so load AFTER it for the persisted baselines (and the
// expensively-measured criticality ranking) to win — that continuity is
// the point of persisting them.
func (mo *Monitor) LoadState(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reliability: load state: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("reliability: load state: %w", err)
	}
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if len(st.Learners) != len(mo.ledger) {
		return fmt.Errorf("reliability: load state: %d persisted learners, live model has %d",
			len(st.Learners), len(mo.ledger))
	}
	if st.SegmentWords != mo.cfg.SegmentWords {
		return fmt.Errorf("reliability: load state: persisted segment width %d, monitor uses %d",
			st.SegmentWords, mo.cfg.SegmentWords)
	}
	for i, pl := range st.Learners {
		e := mo.ledger[i]
		if pl.Dims != e.dims {
			return fmt.Errorf("reliability: load state: learner %d persisted with %d dims, live has %d",
				i, pl.Dims, e.dims)
		}
		if pl.HasCrit && len(pl.Crit) != len(e.maskedSeg) {
			return fmt.Errorf("reliability: load state: learner %d carries %d criticality segments, live has %d",
				i, len(pl.Crit), len(e.maskedSeg))
		}
	}
	for i, pl := range st.Learners {
		e := mo.ledger[i]
		e.integrityFaults = pl.IntegrityFaults
		e.canaryFaults = pl.CanaryFaults
		e.repairs = pl.Repairs
		if pl.HasCanary {
			e.hasCanary = true
			e.baseline = pl.Baseline
			e.last = pl.Last
		}
		if pl.HasCrit {
			e.hasCrit = true
			e.crit = append([]float64(nil), pl.Crit...)
		}
	}
	mo.scrubs.Store(st.Scrubs)
	mo.detections.Store(st.Detections)
	mo.quarantines.Store(st.Quarantines)
	mo.repairs.Store(st.Repairs)
	mo.repairFails.Store(st.RepairFails)
	return nil
}

// persistState writes the state to the configured StatePath, recording
// (not returning) failures — it runs on the tail of scrub and repair
// passes, whose reports must not be replaced by a disk error.
func (mo *Monitor) persistState() {
	if mo.cfg.StatePath == "" {
		return
	}
	if err := mo.SaveState(mo.cfg.StatePath); err != nil {
		mo.mu.Lock()
		mo.lastErr = err.Error()
		mo.mu.Unlock()
	}
}
