package reliability

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"boosthd/internal/boosthd"
	"boosthd/internal/faults"
	"boosthd/internal/hdc"
	"boosthd/internal/infer"
	"boosthd/internal/serve"
	"boosthd/internal/trainer"
)

// fixture trains a small fixed-seed ensemble and returns held-out rows.
func fixture(t testing.TB, dim, nl int) (*boosthd.Model, [][]float64, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(4321))
	const n, features, classes = 300, 10, 3
	centers := make([][]float64, classes)
	for c := range centers {
		mu := make([]float64, features)
		for j := range mu {
			mu[j] = rng.NormFloat64() * 1.2
		}
		centers[c] = mu
	}
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % classes
		row := make([]float64, features)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*0.8
		}
		X[i] = row
		y[i] = c
	}
	for j := 0; j < features; j++ {
		var mean, sq float64
		for i := range X {
			mean += X[i][j]
		}
		mean /= float64(n)
		for i := range X {
			d := X[i][j] - mean
			sq += d * d
		}
		std := 1.0
		if sq > 0 {
			std = math.Sqrt(sq / float64(n))
		}
		for i := range X {
			X[i][j] = (X[i][j] - mean) / std
		}
	}
	cfg := boosthd.DefaultConfig(dim, nl, classes)
	cfg.Epochs = 3
	cfg.Seed = 7
	m, err := boosthd.Train(X[:200], y[:200], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, X[200:], y[200:]
}

// saveCheckpoint writes m as the verified repair checkpoint.
func saveCheckpoint(t testing.TB, m *boosthd.Model) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "verified.bhde")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// corruptLearner flips float32 bits of one learner's class memory under
// its write lock until at least one bit actually flipped.
func corruptLearner(t testing.TB, m *boosthd.Model, i int, inj *faults.Injector) int {
	t.Helper()
	total := 0
	for attempt := 0; attempt < 100 && total == 0; attempt++ {
		m.Learners[i].MutateClass(func(class []hdc.Vector) {
			for _, cv := range class {
				total += inj.InjectFloat32(cv)
			}
		})
	}
	if total == 0 {
		t.Fatal("injector never flipped a bit")
	}
	return total
}

// hammer launches n clients that predict continuously until stop closes.
func hammer(t testing.TB, srv *serve.Server, rows [][]float64, n int, stop <-chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	var failures atomic.Uint64
	wg.Add(n)
	for c := 0; c < n; c++ {
		go func(c int) {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.Predict(rows[(c+k)%len(rows)]); err != nil {
					failures.Add(1)
					return
				}
			}
		}(c)
	}
	t.Cleanup(func() {
		if f := failures.Load(); f > 0 {
			t.Errorf("%d client predictions failed under reliability load", f)
		}
	})
	return &wg
}

func samePreds(t testing.TB, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d predictions vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: prediction %d is %d, want %d", what, i, got[i], want[i])
		}
	}
}

func contains(idx []int, want int) bool {
	for _, i := range idx {
		if i == want {
			return true
		}
	}
	return false
}

// TestScrubQuarantineRepairFloatUnderLoad is the acceptance soak for the
// float backend: 64 concurrent clients hammer the server while learners
// are corrupted one at a time through the locked injection path. Every
// corruption must be detected by the scrubber, quarantined predictions
// must match a clean model with the same learners alpha-masked
// bit-for-bit, and post-repair predictions must match the pristine
// model. Run with -race.
func TestScrubQuarantineRepairFloatUnderLoad(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	m, X, y := fixture(t, 480, 4)
	pristine := m.Clone()
	ckpt := saveCheckpoint(t, m)

	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	probes := X[32:]

	stop := make(chan struct{})
	wg := hammer(t, srv, X, 64, stop)

	pristineEng := infer.NewEngine(pristine)
	wantClean, err := pristineEng.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}

	nl := len(m.Learners)
	for round := 0; round < 2*nl; round++ {
		target := round % nl
		corruptLearner(t, m, target, inj)

		rep, err := mon.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		if !contains(rep.Quarantined, target) {
			t.Fatalf("round %d: scrub missed corrupted learner %d (report %+v)", round, target, rep)
		}
		if !rep.Swapped {
			t.Fatalf("round %d: quarantine did not swap the serving engine", round)
		}

		// Quarantined serving must equal the clean model with the same
		// learners alpha-masked, bit for bit.
		mask := make([]bool, nl)
		for _, i := range mon.Status().Quarantined {
			mask[i] = true
		}
		view, err := pristine.MaskedAlphaView(mask)
		if err != nil {
			t.Fatal(err)
		}
		wantMasked, err := infer.NewEngine(view).PredictBatch(probes)
		if err != nil {
			t.Fatal(err)
		}
		gotMasked, err := srv.PredictBatch(probes)
		if err != nil {
			t.Fatal(err)
		}
		samePreds(t, "quarantined serving", gotMasked, wantMasked)

		rrep, err := mon.Repair()
		if err != nil {
			t.Fatal(err)
		}
		if !contains(rrep.Repaired, target) || rrep.Source != "checkpoint" {
			t.Fatalf("round %d: repair report %+v, want learner %d via checkpoint", round, rrep, target)
		}
		got, err := srv.PredictBatch(probes)
		if err != nil {
			t.Fatal(err)
		}
		samePreds(t, "post-repair serving", got, wantClean)
	}
	close(stop)
	wg.Wait()

	st := mon.Status()
	if st.Degraded || len(st.Quarantined) != 0 {
		t.Fatalf("monitor still degraded after repairs: %+v", st)
	}
	if st.Detections < uint64(2*nl) || st.Repairs < uint64(2*nl) {
		t.Fatalf("counters did not track the soak: %+v", st)
	}
}

// TestScrubDetectsEveryWordFaultBinary is the acceptance soak for the
// packed-binary backend: word faults are injected into the live
// quantized planes while 64 clients hammer the server. The scrubber must
// flag exactly the learners whose planes differ from the pristine
// quantization, quarantined predictions must match the pristine binary
// engine with the same mask, and repair (re-threshold from the intact
// float memory) must restore pristine predictions. Run with -race.
func TestScrubDetectsEveryWordFaultBinary(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	m, X, y := fixture(t, 480, 4)
	pristine := m.Clone()

	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	probes := X[32:]

	pristineEng, err := infer.NewBinaryEngine(pristine)
	if err != nil {
		t.Fatal(err)
	}
	pristineSigs := signModel(pristine, pristineEng.Binary(), DefaultSegmentWords)
	wantClean, err := pristineEng.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	wg := hammer(t, srv, X, 64, stop)

	inj, err := faults.NewInjector(5e-4, rand.New(rand.NewSource(4242)))
	if err != nil {
		t.Fatal(err)
	}
	nl := len(m.Learners)
	for round := 0; round < 6; round++ {
		bin := srv.Engine().Binary()
		flips := 0
		for attempt := 0; attempt < 100 && flips == 0; attempt++ {
			flips = bin.InjectWordFaults(inj)
		}
		if flips == 0 {
			t.Fatal("word injector never flipped a bit")
		}

		// Ground truth: which learners' planes now differ from the
		// pristine quantization (deterministic from the float memory).
		cur := signModel(m, srv.Engine().Binary(), DefaultSegmentWords)
		var corrupted []int
		for i := range cur {
			if !cur[i].planesEqual(&pristineSigs[i]) {
				corrupted = append(corrupted, i)
			}
		}
		if len(corrupted) == 0 {
			t.Fatalf("round %d: %d flips landed nowhere", round, flips)
		}

		rep, err := mon.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range corrupted {
			if !contains(rep.Quarantined, i) {
				t.Fatalf("round %d: scrub missed corrupted learner %d (flagged %v)", round, i, rep.Quarantined)
			}
		}

		mask := make([]bool, nl)
		for _, i := range mon.Status().Quarantined {
			mask[i] = true
		}
		refEng, err := infer.Remask(pristineEng, pristine, mask)
		if err != nil {
			t.Fatal(err)
		}
		wantMasked, err := refEng.PredictBatch(probes)
		if err != nil {
			t.Fatal(err)
		}
		gotMasked, err := srv.PredictBatch(probes)
		if err != nil {
			t.Fatal(err)
		}
		samePreds(t, "quarantined binary serving", gotMasked, wantMasked)

		rrep, err := mon.Repair()
		if err != nil {
			t.Fatal(err)
		}
		if rrep.Source != "rethreshold" || len(rrep.Failed) != 0 {
			t.Fatalf("round %d: repair report %+v, want rethreshold with no failures", round, rrep)
		}
		got, err := srv.PredictBatch(probes)
		if err != nil {
			t.Fatal(err)
		}
		samePreds(t, "post-repair binary serving", got, wantClean)
	}
	close(stop)
	wg.Wait()
}

// TestCanaryCatchesSilentCollapse: in a TrustVersioned deployment a
// locked mutation is re-signed, so the integrity check alone would wave
// through a semantically destroyed learner. The canary must catch the
// collapse, and repair must restore from the checkpoint (the re-signed
// memory is not trustworthy).
func TestCanaryCatchesSilentCollapse(t *testing.T) {
	m, X, y := fixture(t, 480, 4)
	pristine := m.Clone()
	ckpt := saveCheckpoint(t, m)

	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{CheckpointPath: ckpt, TrustVersioned: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:48], y[:48]); err != nil {
		t.Fatal(err)
	}

	// Rotate the learner's class vectors: every signature stays
	// internally consistent and the version moves (trusted), but the
	// learner now answers the wrong class almost always.
	const target = 1
	m.Learners[target].MutateClass(func(class []hdc.Vector) {
		first := append(hdc.Vector(nil), class[0]...)
		copy(class[0], class[1])
		copy(class[1], class[2])
		copy(class[2], first)
	})

	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.IntegrityFaults) != 0 {
		t.Fatalf("trusted mutation flagged as integrity fault: %+v", rep)
	}
	if !contains(rep.CanaryFaults, target) || !contains(rep.Quarantined, target) {
		t.Fatalf("canary missed the collapapsed learner: %+v", rep)
	}

	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rrep.Repaired, target) || rrep.Source != "checkpoint" {
		t.Fatalf("repair report %+v, want learner %d via checkpoint", rrep, target)
	}
	want, err := infer.NewEngine(pristine).PredictBatch(X[48:])
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.PredictBatch(X[48:])
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "post-repair serving", got, want)
}

// TestRepairViaTrainer: with no checkpoint but a trainer attached, a
// corrupted learner triggers one hot retrain over the trainer's buffer
// and the monitor adopts the fresh model.
func TestRepairViaTrainer(t *testing.T) {
	m, X, y := fixture(t, 480, 4)
	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := trainer.New(srv, trainer.Config{
		BufferCap:  512,
		MinRetrain: 32,
		// Buffering only: online updates would bump versions and a
		// strict monitor would read that as corruption.
		DisableOnlineUpdate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ObserveBatch(X, y); err != nil {
		t.Fatal(err)
	}
	mon, err := New(srv, Config{Trainer: tr})
	if err != nil {
		t.Fatal(err)
	}

	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	corruptLearner(t, m, 2, inj)
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.Quarantined, 2) {
		t.Fatalf("scrub missed the corruption: %+v", rep)
	}
	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Source != "trainer" || !rrep.Swapped {
		t.Fatalf("repair report %+v, want a trainer-sourced swap", rrep)
	}
	st := mon.Status()
	if st.Degraded {
		t.Fatalf("still degraded after trainer repair: %+v", st)
	}
	// The adopted model is a fresh refit, not the pristine one — but it
	// must be healthy: a follow-up scrub is clean and accuracy is sane.
	rep2, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Quarantined) != 0 || rep2.Adopted {
		t.Fatalf("post-repair scrub not clean: %+v", rep2)
	}
	acc, err := srv.Engine().Evaluate(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("refit model accuracy %.3f is collapsed", acc)
	}
}

// TestFrozenBinaryReloadRepair: a cold-loaded binary snapshot has no
// float memory, so repair is a wholesale reload of the verified
// checkpoint.
func TestFrozenBinaryReloadRepair(t *testing.T) {
	m, X, y := fixture(t, 480, 4)
	bm, err := infer.Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bhdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	eng, err := serve.LoadEngine(path, "binary")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Binary() == nil || !eng.Binary().Frozen() {
		t.Fatal("expected a frozen binary engine")
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	probes := X[32:]
	wantClean, err := eng.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := faults.NewInjector(5e-4, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for attempt := 0; attempt < 100 && flips == 0; attempt++ {
		flips = srv.Engine().Binary().InjectWordFaults(inj)
	}
	if flips == 0 {
		t.Fatal("word injector never flipped a bit")
	}
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) == 0 {
		t.Fatalf("scrub missed frozen-plane corruption: %+v", rep)
	}
	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Source != "checkpoint" || !rrep.Swapped {
		t.Fatalf("repair report %+v, want checkpoint reload", rrep)
	}
	got, err := srv.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "reloaded frozen serving", got, wantClean)
	if st := mon.Status(); st.Degraded {
		t.Fatalf("still degraded after reload: %+v", st)
	}
}

// TestBackgroundLoopHealsWithoutIntervention: the scrub loop alone must
// take a corrupted server back to healthy.
func TestBackgroundLoopHealsWithoutIntervention(t *testing.T) {
	m, X, y := fixture(t, 480, 4)
	pristine := m.Clone()
	ckpt := saveCheckpoint(t, m)
	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{CheckpointPath: ckpt, ScrubEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	mon.Start()
	defer mon.Stop()

	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	corruptLearner(t, m, 0, inj)
	corruptLearner(t, m, 3, inj)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := mon.Status()
		if st.Repairs >= 2 && !st.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop did not heal in time: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	want, err := infer.NewEngine(pristine).PredictBatch(X[32:])
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.PredictBatch(X[32:])
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "background-healed serving", got, want)
	_ = y
}

// TestRepairHealsPlanesDespiteBrokenCheckpoint: a missing repair
// checkpoint dooms only the learners that needed it — plane-only
// corruption must still heal by re-threshold, and the background
// auto-repair must stop retrying the hopeless learner instead of
// re-quantizing the model every tick.
func TestRepairHealsPlanesDespiteBrokenCheckpoint(t *testing.T) {
	m, X, y := fixture(t, 480, 4)
	ckpt := saveCheckpoint(t, m)
	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}

	// Corrupt learner 0's float memory and some quantized planes.
	injF, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	for flips := 0; flips == 0; {
		flips = m.InjectLearnerFaults(0, injF)
	}
	injW, err := faults.NewInjector(5e-4, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	for flips := 0; flips == 0; {
		flips = srv.Engine().Binary().InjectWordFaults(injW)
	}
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.Quarantined, 0) {
		t.Fatalf("scrub missed the float corruption: %+v", rep)
	}

	// Now the repair source disappears.
	if err := os.Remove(ckpt); err != nil {
		t.Fatal(err)
	}
	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rrep.Failed, 0) {
		t.Fatalf("repair should fail learner 0 without its checkpoint: %+v", rrep)
	}
	if contains(rrep.Repaired, 0) {
		t.Fatalf("learner 0 repaired from a deleted checkpoint: %+v", rrep)
	}
	st := mon.Status()
	if !st.Degraded || !contains(st.Quarantined, 0) {
		t.Fatalf("learner 0 should stay quarantined: %+v", st)
	}
	// Every plane-only learner healed despite the checkpoint failure.
	if got := len(st.Quarantined); got != 1 {
		t.Fatalf("%d learners quarantined, want only the float-corrupted one: %+v", got, st)
	}
	// A repeat repair with nothing new to try is cheap and hopeless:
	// the auto-repair gate must report stuck.
	if mon.autoRepairable() {
		t.Fatal("auto-repair should be parked after a total failure")
	}
	// A fresh detection un-parks it.
	for flips := 0; flips == 0; {
		flips = srv.Engine().Binary().InjectWordFaults(injW)
	}
	if _, err := mon.Scrub(); err != nil {
		t.Fatal(err)
	}
	if !mon.autoRepairable() {
		t.Fatal("auto-repair should retry after the quarantine picture changed")
	}
}

// TestCheckpointDisarmsOnForeignAdoption: after an operator-style swap
// the configured checkpoint no longer describes the serving model, so
// checkpoint repair must refuse to graft its stale weights until
// SetCheckpoint re-arms it with a checkpoint of the new model.
func TestCheckpointDisarmsOnForeignAdoption(t *testing.T) {
	m, X, y := fixture(t, 480, 4)
	ckpt := saveCheckpoint(t, m)
	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}

	// An operator swap installs a DIFFERENT (retrained-style) model with
	// the same geometry.
	other := m.Clone()
	if err := other.Refit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(infer.NewEngine(other)); err != nil {
		t.Fatal(err)
	}
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Adopted {
		t.Fatalf("scrub should adopt the foreign engine: %+v", rep)
	}

	// Corrupt a learner of the adopted model: repair must NOT restore
	// from the stale checkpoint of the old model.
	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	for flips := 0; flips == 0; {
		flips = other.InjectLearnerFaults(1, inj)
	}
	if _, err := mon.Scrub(); err != nil {
		t.Fatal(err)
	}
	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if contains(rrep.Repaired, 1) || !contains(rrep.Failed, 1) {
		t.Fatalf("disarmed checkpoint still used for repair: %+v", rrep)
	}

	// Re-arm with a checkpoint of the CURRENT model: repair works again.
	// (Restore learner 1 first so the new checkpoint is clean.)
	pristineOther := other.Clone()
	ckpt2 := saveCheckpoint(t, pristineOther)
	if err := mon.SetCheckpoint(ckpt2); err != nil {
		t.Fatal(err)
	}
	rrep, err = mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rrep.Repaired, 1) || rrep.Source != "checkpoint" {
		t.Fatalf("re-armed checkpoint repair failed: %+v", rrep)
	}
}

// TestScrubNeverMasksWholeEnsemble: when every learner is corrupted at
// once, the scrub must keep one serving (an all-zero-alpha model would
// answer class 0 for everything with a 200) and surface the event in
// Status.
func TestScrubNeverMasksWholeEnsemble(t *testing.T) {
	m, X, y := fixture(t, 480, 4)
	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(61)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Learners {
		for flips := 0; flips == 0; {
			flips = m.InjectLearnerFaults(i, inj)
		}
	}
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	nl := len(m.Learners)
	if len(rep.Quarantined) != nl-1 {
		t.Fatalf("quarantined %d of %d learners, want all but one: %+v", len(rep.Quarantined), nl, rep)
	}
	st := mon.Status()
	if len(st.Quarantined) != nl-1 || st.LastError == "" {
		t.Fatalf("total-corruption event not surfaced: %+v", st)
	}
}
