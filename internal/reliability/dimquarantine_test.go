package reliability

import (
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"boosthd/internal/boosthd"
	"boosthd/internal/faults"
	"boosthd/internal/hdc"
	"boosthd/internal/infer"
	"boosthd/internal/serve"
	"boosthd/internal/trainer"
)

// wideFixture trains an ensemble whose learners span several signature
// segments at segWords=1 (one 64-dim word per segment), so dimension
// quarantine is distinguishable from learner quarantine.
func wideFixture(t testing.TB) (*boosthd.Model, [][]float64, []int) {
	t.Helper()
	return fixture(t, 2048, 4) // 512 dims per learner = 8 words = 8 segments
}

// flipPlaneWord flips one bit of one (learner, class) sign-plane word
// through the clone-and-swap injection path — a targeted, silent word
// fault (versions and stored popcounts untouched).
func flipPlaneWord(bin *infer.BinaryModel, learner, class, word int, bit uint) {
	bin.ApplyWordRepair(false, func(l, c int, sign, mask []uint64) {
		if l == learner && c == class {
			sign[word] ^= 1 << bit
		}
	})
}

// TestDimQuarantineMasksOnlyCorruptedWords: a single flipped plane word
// must be attributed to its segment, dimension-masked (the learner
// keeps voting), served bit-for-bit like a clean model with that word
// masked out at quantize time, and repaired surgically by a
// re-threshold of only that learner.
func TestDimQuarantineMasksOnlyCorruptedWords(t *testing.T) {
	m, X, y := wideFixture(t)
	pristine := m.Clone()
	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{SegmentWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	probes := X[32:]

	pristineEng, err := infer.NewBinaryEngine(pristine)
	if err != nil {
		t.Fatal(err)
	}
	wantClean, err := pristineEng.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}

	const target, word = 2, 3
	flipPlaneWord(srv.Engine().Binary(), target, 1, word, 17)

	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("single-word fault escalated to full quarantine: %+v", rep)
	}
	if !contains(rep.DimMasked, target) || len(rep.DimMasked) != 1 {
		t.Fatalf("dimension mask missed the corrupted learner: %+v", rep)
	}
	if rep.MaskedWords != 1 {
		t.Fatalf("masked %d words for a single-word fault, want 1", rep.MaskedWords)
	}
	if !rep.Swapped {
		t.Fatal("dimension quarantine did not swap the serving engine")
	}
	st := mon.Status()
	h := st.Ledger[target]
	if h.State != "degraded" || h.MaskedWords != 1 {
		t.Fatalf("ledger entry for the masked learner: %+v", h)
	}
	wantFrac := 1 - 64.0/512.0
	if h.HealthyFraction < wantFrac-1e-9 || h.HealthyFraction > wantFrac+1e-9 {
		t.Fatalf("healthy fraction %v, want %v", h.HealthyFraction, wantFrac)
	}
	if !st.Degraded {
		t.Fatal("status not degraded while a segment is masked")
	}

	// The masked serving engine must equal the pristine binary model
	// with the corrupted segment's words masked out at quantize time.
	healthy := make([][]uint64, len(m.Learners))
	hm := make([]uint64, 8)
	for w := range hm {
		hm[w] = ^uint64(0)
	}
	hm[word] = 0
	healthy[target] = hm
	refEng, err := infer.RemaskDims(pristineEng, pristine, make([]bool, len(m.Learners)), healthy)
	if err != nil {
		t.Fatal(err)
	}
	wantMasked, err := refEng.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	gotMasked, err := srv.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "dimension-masked serving", gotMasked, wantMasked)

	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rrep.Repaired, target) || rrep.Source != "rethreshold" || len(rrep.Failed) != 0 {
		t.Fatalf("repair report %+v, want learner %d via rethreshold", rrep, target)
	}
	got, err := srv.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "post-repair serving", got, wantClean)
	st = mon.Status()
	if st.Degraded || st.MaskedWords != 0 {
		t.Fatalf("monitor still degraded after surgical repair: %+v", st)
	}
}

// TestDimQuarantineFloatSegmentRestore: float corruption confined to
// one dimension segment must be masked at dimension granularity and
// repaired by restoring ONLY that segment's ranges from the checkpoint.
func TestDimQuarantineFloatSegmentRestore(t *testing.T) {
	m, X, y := wideFixture(t)
	pristine := m.Clone()
	ckpt := saveCheckpoint(t, m)
	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{SegmentWords: 1, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	probes := X[32:]
	wantClean, err := infer.NewEngine(pristine).PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt dims [128,192) of learner 1 — exactly segment 2 at
	// segWords=1 — through the locked mutation path (version bumps,
	// strict mode attributes by content).
	const target, seg = 1, 2
	m.Learners[target].MutateClass(func(class []hdc.Vector) {
		for _, cv := range class {
			for k := 128; k < 192; k++ {
				cv[k] = 1e30
			}
		}
	})

	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.DimMasked, target) || len(rep.Quarantined) != 0 {
		t.Fatalf("float segment corruption not dimension-masked: %+v", rep)
	}
	if mon.ledger[target].maskedSeg[seg] != true {
		t.Fatalf("segment %d not masked: %+v", seg, mon.ledger[target].maskedSeg)
	}
	if !mon.ledger[target].floatBad[seg] {
		t.Fatal("corruption not attributed to the float representation")
	}

	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rrep.Repaired, target) || rrep.Source != "checkpoint" {
		t.Fatalf("repair report %+v, want learner %d via checkpoint", rrep, target)
	}
	if rrep.Segments != 1 {
		t.Fatalf("restored %d segments, want exactly the corrupted one", rrep.Segments)
	}
	got, err := srv.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "post-segment-restore serving", got, wantClean)
}

// TestLearnerGranularFallback: MinHealthyFraction >= 1 forces the PR-4
// whole-learner behavior — every attributed fault escalates to a full
// alpha-mask quarantine.
func TestLearnerGranularFallback(t *testing.T) {
	m, X, y := wideFixture(t)
	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{SegmentWords: 1, MinHealthyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	flipPlaneWord(srv.Engine().Binary(), 0, 0, 5, 3)
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.Quarantined, 0) || len(rep.DimMasked) != 0 {
		t.Fatalf("learner-granular mode did not fully quarantine: %+v", rep)
	}
}

// TestDimMaskEscalatesWhenTooBroad: when most of a learner's segments
// are corrupted, the healthy fraction floor escalates to a full
// quarantine instead of serving a sliver of the learner.
func TestDimMaskEscalatesWhenTooBroad(t *testing.T) {
	m, X, y := wideFixture(t)
	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{SegmentWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	// Corrupt 5 of learner 3's 8 words: healthy fraction 3/8 < 0.5.
	for w := 0; w < 5; w++ {
		flipPlaneWord(srv.Engine().Binary(), 3, 0, w, uint(w+1))
	}
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.Quarantined, 3) {
		t.Fatalf("broad corruption not escalated to full quarantine: %+v", rep)
	}
}

// TestRepairRechecksFloatBetweenScrubAndRepair: float corruption that
// lands AFTER the scrub attributed a plane-only fault must not be
// re-thresholded into the serving planes and re-signed as healthy —
// repair re-checks fresh signatures and restores from the checkpoint.
func TestRepairRechecksFloatBetweenScrubAndRepair(t *testing.T) {
	m, X, y := wideFixture(t)
	pristine := m.Clone()
	ckpt := saveCheckpoint(t, m)
	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{SegmentWords: 1, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	probes := X[32:]
	pristineEng, err := infer.NewBinaryEngine(pristine)
	if err != nil {
		t.Fatal(err)
	}
	wantClean, err := pristineEng.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}

	// Scrub attributes a plane-only word fault on learner 1...
	const target = 1
	flipPlaneWord(srv.Engine().Binary(), target, 0, 2, 11)
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.DimMasked, target) {
		t.Fatalf("plane fault not dimension-masked: %+v", rep)
	}
	// ...then the learner's FLOAT memory corrupts before Repair runs.
	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	for flips := 0; flips == 0; {
		flips = m.InjectLearnerFaults(target, inj)
	}

	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rrep.Repaired, target) || rrep.Source != "checkpoint" {
		t.Fatalf("repair report %+v, want learner %d restored via checkpoint (not rethresholded from corrupted float memory)", rrep, target)
	}
	got, err := srv.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "post-repair serving", got, wantClean)
	// And a follow-up scrub must be clean — nothing was laundered.
	rep, err = mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.IntegrityFaults) != 0 || len(rep.Quarantined)+len(rep.DimMasked) != 0 {
		t.Fatalf("post-repair scrub not clean: %+v", rep)
	}
}

// TestFrozenDimQuarantine: a frozen binary snapshot (no float memory)
// still gets word-granular quarantine — segment attribution over its
// planes, dimension-masked serving, criticality baselining over the
// frozen views — and repairs by wholesale checkpoint reload.
func TestFrozenDimQuarantine(t *testing.T) {
	m, X, y := wideFixture(t)
	bm, err := infer.Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bhdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	eng, err := serve.LoadEngine(path, "binary")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mon, err := New(srv, Config{SegmentWords: 1, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.SetCanary(X[:32], y[:32]); err != nil {
		t.Fatal(err)
	}
	probes := X[32:]
	wantClean, err := eng.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	flipPlaneWord(srv.Engine().Binary(), 0, 0, 6, 42)
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.DimMasked, 0) || len(rep.Quarantined) != 0 {
		t.Fatalf("frozen word fault not dimension-masked: %+v", rep)
	}
	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Source != "checkpoint" || !rrep.Swapped {
		t.Fatalf("frozen repair report %+v, want checkpoint reload", rrep)
	}
	got, err := srv.PredictBatch(probes)
	if err != nil {
		t.Fatal(err)
	}
	samePreds(t, "reloaded frozen serving", got, wantClean)
}

// TestSignedUpdatesKeepScrubStrict: with the trainer→monitor handoff
// wired, streaming updates (version bumps + announced signatures) scrub
// clean, while an unannounced mutation is still caught — after the one
// grace pass that absorbs handoff races — and repaired.
func TestSignedUpdatesKeepScrubStrict(t *testing.T) {
	m, X, y := wideFixture(t)
	ckpt := saveCheckpoint(t, m)
	srv, err := serve.NewServer(infer.NewEngine(m), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := trainer.New(srv, trainer.Config{BufferCap: 512, MinRetrain: 32})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(srv, Config{SegmentWords: 1, SignedUpdates: true, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetMutationObserver(mon.NoteMutation)

	// Streaming updates through the contract: announced, so strict
	// scrubbing must stay clean.
	for i := range X[:64] {
		if err := tr.Observe(X[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.IntegrityFaults) != 0 || len(rep.Quarantined) != 0 || len(rep.DimMasked) != 0 {
		t.Fatalf("announced streaming updates flagged as corruption: %+v", rep)
	}

	// An unannounced locked mutation (fault injection bumps versions
	// without a handoff) gets one pass of grace, then is corruption.
	inj, err := faults.NewInjector(2e-3, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	for flips := 0; flips == 0; {
		flips = m.InjectLearnerFaults(2, inj)
	}
	rep, err = mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if contains(rep.IntegrityFaults, 2) {
		t.Fatalf("grace pass flagged before the handoff could land: %+v", rep)
	}
	rep, err = mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !contains(rep.IntegrityFaults, 2) {
		t.Fatalf("unannounced mutation never flagged: %+v", rep)
	}
	if len(rep.DimMasked) == 0 && len(rep.Quarantined) == 0 {
		t.Fatalf("unannounced mutation not masked: %+v", rep)
	}
	// More announced updates keep flowing while degraded.
	for i := range X[:16] {
		if err := tr.Observe(X[i], y[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mon.Repair(); err != nil {
		t.Fatal(err)
	}
	st := mon.Status()
	if st.Degraded {
		t.Fatalf("still degraded after repair: %+v", st)
	}
}

// TestDimMaskedServingUnderLoad is the -race acceptance check for the
// dimension tier: 64 concurrent clients hammer both backends while a
// word fault is masked and repaired; every quarantined-state prediction
// must match the clean dimension-masked reference bit-for-bit, and
// post-repair predictions the pristine model.
func TestDimMaskedServingUnderLoad(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	for _, backend := range []string{"float", "binary"} {
		t.Run(backend, func(t *testing.T) {
			m, X, y := wideFixture(t)
			pristine := m.Clone()
			ckpt := saveCheckpoint(t, m)
			var eng, pristineEng *infer.Engine
			var err error
			if backend == "binary" {
				eng, err = infer.NewBinaryEngine(m)
				if err == nil {
					pristineEng, err = infer.NewBinaryEngine(pristine)
				}
			} else {
				eng = infer.NewEngine(m)
				pristineEng = infer.NewEngine(pristine)
			}
			if err != nil {
				t.Fatal(err)
			}
			srv, err := serve.NewServer(eng, serve.Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			mon, err := New(srv, Config{SegmentWords: 1, CheckpointPath: ckpt})
			if err != nil {
				t.Fatal(err)
			}
			if err := mon.SetCanary(X[:32], y[:32]); err != nil {
				t.Fatal(err)
			}
			probes := X[32:]
			wantClean, err := pristineEng.PredictBatch(probes)
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			wg := hammer(t, srv, X, 64, stop)

			const target, seg = 1, 4
			if backend == "binary" {
				flipPlaneWord(srv.Engine().Binary(), target, 0, seg, 9)
			} else {
				m.Learners[target].MutateClass(func(class []hdc.Vector) {
					for _, cv := range class {
						for k := seg * 64; k < (seg+1)*64; k++ {
							cv[k] = -cv[k] + 1
						}
					}
				})
			}
			rep, err := mon.Scrub()
			if err != nil {
				t.Fatal(err)
			}
			if !contains(rep.DimMasked, target) || len(rep.Quarantined) != 0 {
				t.Fatalf("word fault not dimension-masked under load: %+v", rep)
			}

			// Bit-for-bit: masked serving == pristine model with the same
			// segment masked out.
			healthy := make([][]uint64, len(m.Learners))
			hm := make([]uint64, 8)
			for w := range hm {
				hm[w] = ^uint64(0)
			}
			hm[seg] = 0
			healthy[target] = hm
			refEng, err := infer.RemaskDims(pristineEng, pristine, make([]bool, len(m.Learners)), healthy)
			if err != nil {
				t.Fatal(err)
			}
			wantMasked, err := refEng.PredictBatch(probes)
			if err != nil {
				t.Fatal(err)
			}
			gotMasked, err := srv.PredictBatch(probes)
			if err != nil {
				t.Fatal(err)
			}
			samePreds(t, backend+" dimension-masked serving", gotMasked, wantMasked)

			rrep, err := mon.Repair()
			if err != nil {
				t.Fatal(err)
			}
			if !contains(rrep.Repaired, target) {
				t.Fatalf("repair missed the masked learner: %+v", rrep)
			}
			got, err := srv.PredictBatch(probes)
			if err != nil {
				t.Fatal(err)
			}
			samePreds(t, backend+" post-repair serving", got, wantClean)
			close(stop)
			wg.Wait()
		})
	}
}

// FuzzSegmentAttribution: whatever (learner, class, plane, word, bit) a
// silent fault lands on, the scrub must flag that learner and the mask
// must cover exactly the segment containing the flipped word.
func FuzzSegmentAttribution(f *testing.F) {
	m, X, y := wideFixture(f)
	pristineEng, err := infer.NewBinaryEngine(m.Clone())
	if err != nil {
		f.Fatal(err)
	}
	_ = pristineEng
	f.Add(uint8(0), uint8(0), false, uint8(0), uint8(0))
	f.Add(uint8(3), uint8(2), true, uint8(7), uint8(63))
	f.Add(uint8(1), uint8(1), false, uint8(4), uint8(31))
	f.Fuzz(func(t *testing.T, learnerB, classB uint8, hitMask bool, wordB, bitB uint8) {
		learner := int(learnerB) % len(m.Learners)
		class := int(classB) % m.Cfg.Classes
		word := int(wordB) % 8
		bit := uint(bitB) % 64

		eng, err := infer.NewBinaryEngine(m.Clone())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(eng, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		mon, err := New(srv, Config{SegmentWords: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.SetCanary(X[:16], y[:16]); err != nil {
			t.Fatal(err)
		}
		mutated := false
		srv.Engine().Binary().ApplyWordRepair(false, func(l, c int, sign, mask []uint64) {
			if l != learner || c != class {
				return
			}
			if hitMask {
				// Flipping a mask bit ON where the tail is padded would
				// be outside the logical dimensions; segDims are 512
				// here (8 full words), so every bit is in range.
				mask[word] ^= 1 << bit
			} else {
				sign[word] ^= 1 << bit
			}
			mutated = true
		})
		if !mutated {
			t.Fatal("fault landed nowhere")
		}
		rep, err := mon.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		flaggedDim := contains(rep.DimMasked, learner)
		flaggedFull := contains(rep.Quarantined, learner)
		if !flaggedDim && !flaggedFull {
			t.Fatalf("injected word %d bit %d of learner %d undetected: %+v", word, bit, learner, rep)
		}
		if flaggedDim {
			e := mon.ledger[learner]
			if !e.maskedSeg[word] {
				t.Fatalf("flagged segments %v do not cover injected word %d", e.maskedSeg, word)
			}
			for s, bad := range e.maskedSeg {
				if bad && s != word {
					t.Fatalf("segment %d masked for a fault in word %d", s, word)
				}
			}
		}
	})
}
