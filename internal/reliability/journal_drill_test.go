package reliability

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"boosthd/internal/faults"
	"boosthd/internal/infer"
	"boosthd/internal/obs"
	"boosthd/internal/serve"
)

// drillChaos is the test stand-in for boosthd-serve's -chaos injector:
// word faults into the live packed planes through the engine's locked
// injection path.
type drillChaos struct {
	mu  sync.Mutex
	srv *serve.Server
	rng *rand.Rand
}

func (c *drillChaos) InjectWords(pb float64) (int, error) {
	bin := c.srv.Engine().Binary()
	if bin == nil {
		return 0, fmt.Errorf("%w: float backend", serve.ErrBadInput)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	inj, err := faults.NewInjector(pb, c.rng)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", serve.ErrBadInput, err)
	}
	return bin.InjectWordFaults(inj), nil
}

// TestFaultDrillEventSequence is the end-to-end acceptance drill for
// the event journal: chaos POST /inject over HTTP, a scrub that
// detects and masks, a repair that restores — and GET /events must
// replay the whole incident as a complete, correctly ordered, and
// attributed sequence: inject, then the scrub verdict naming the
// corrupted learners, then their quarantine/dim-mask (sharing the scrub
// pass's correlation ID), then the mask-install engine swap, then the
// repair outcome and unmask (sharing the repair pass's correlation ID),
// then the restore engine swap.
func TestFaultDrillEventSequence(t *testing.T) {
	m, _, _ := fixture(t, 480, 4)
	eng, err := infer.NewBinaryEngine(m)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(eng, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	o := obs.NewServing(0, 0, 0)
	srv.SetObs(o)
	mon, err := New(srv, Config{Journal: o.Journal})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(srv, serve.HandlerConfig{
		Reliability: mon,
		Chaos:       &drillChaos{srv: srv, rng: rand.New(rand.NewSource(7))},
	}))
	defer ts.Close()

	// Inject through the HTTP drill endpoint until a flip lands.
	flips := 0
	for attempt := 0; attempt < 100 && flips == 0; attempt++ {
		body, _ := json.Marshal(map[string]float64{"pb": 5e-4})
		resp, err := http.Post(ts.URL+"/inject", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Flips int `json:"flips"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/inject: %d", resp.StatusCode)
		}
		flips += rep.Flips
	}
	if flips == 0 {
		t.Fatal("chaos injector never flipped a bit")
	}

	srep, err := mon.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(srep.Quarantined)+len(srep.DimMasked) == 0 {
		t.Fatalf("scrub missed the injected faults: %+v", srep)
	}
	rrep, err := mon.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if len(rrep.Repaired) == 0 || len(rrep.Failed) != 0 {
		t.Fatalf("repair did not fully restore: %+v", rrep)
	}

	// Replay the incident from GET /events.
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page struct {
		Seq    uint64      `json:"seq"`
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if page.Seq == 0 || len(page.Events) == 0 {
		t.Fatalf("journal empty after drill: %+v", page)
	}
	for i, e := range page.Events {
		if e.Seq == 0 || e.Time.IsZero() {
			t.Fatalf("event %d missing seq/time stamp: %+v", i, e)
		}
		if i > 0 && e.Seq <= page.Events[i-1].Seq {
			t.Fatalf("journal sequence not monotone at %d: %d then %d", i, page.Events[i-1].Seq, e.Seq)
		}
	}
	// The drill's required order, each stage found after the previous.
	idxOf := func(typ string, after int) int {
		for i := after + 1; i < len(page.Events); i++ {
			if page.Events[i].Type == typ {
				return i
			}
		}
		t.Fatalf("no %q event after index %d in %+v", typ, after, page.Events)
		return -1
	}
	iInject := idxOf(obs.EvInject, -1)
	iScrub := idxOf(obs.EvScrub, iInject)
	scrub := page.Events[iScrub]
	if len(scrub.Learners) == 0 {
		t.Fatalf("scrub event carries no learner attribution: %+v", scrub)
	}
	// The mask verdict (quarantine or dim_mask) follows the scrub and
	// shares its pass correlation ID.
	iMask := iScrub + 1
	for iMask < len(page.Events) &&
		page.Events[iMask].Type != obs.EvQuarantine && page.Events[iMask].Type != obs.EvDimMask {
		iMask++
	}
	if iMask == len(page.Events) {
		t.Fatalf("no quarantine/dim_mask event after the scrub verdict: %+v", page.Events)
	}
	mask := page.Events[iMask]
	if mask.Corr != scrub.Corr {
		t.Fatalf("mask event corr %d != scrub pass corr %d", mask.Corr, scrub.Corr)
	}
	if len(mask.Learners) == 0 {
		t.Fatalf("mask event carries no learner attribution: %+v", mask)
	}
	if mask.Type == obs.EvDimMask && len(mask.Segments) == 0 {
		t.Fatalf("dim_mask event carries no segment attribution: %+v", mask)
	}
	iSwap1 := idxOf(obs.EvSwap, iMask)
	iRepair := idxOf(obs.EvRepair, iSwap1)
	repair := page.Events[iRepair]
	if len(repair.Learners) == 0 {
		t.Fatalf("repair event carries no learner attribution: %+v", repair)
	}
	iUnmask := idxOf(obs.EvUnmask, iRepair)
	if page.Events[iUnmask].Corr != repair.Corr {
		t.Fatalf("unmask corr %d != repair pass corr %d", page.Events[iUnmask].Corr, repair.Corr)
	}
	if repair.Corr == scrub.Corr {
		t.Fatal("repair pass reused the scrub pass's correlation ID")
	}
	idxOf(obs.EvSwap, iUnmask) // the restore install

	// Incremental polling: ?since= replays only the tail.
	resp2, err := http.Get(fmt.Sprintf("%s/events?since=%d", ts.URL, page.Events[iRepair-1].Seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var tail struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&tail); err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) == 0 || tail.Events[0].Seq != page.Events[iRepair].Seq {
		t.Fatalf("?since= did not resume at the repair event: %+v", tail.Events)
	}
}
