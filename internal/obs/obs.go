// Package obs is the serving observability layer: lock-free sharded
// latency histograms, request-scoped stage spans with a sampled trace
// ring, cumulative per-backend stage timing, and a bounded reliability
// event journal with optional JSONL persistence.
//
// The package is deliberately a leaf — stdlib-only, importing nothing
// from the rest of the module — so every subsystem (infer, serve,
// reliability, trainer) can record into it without import cycles. All
// record paths are designed for the serving hot path: histogram
// observation and span stamping are allocation-free (//hd:hotpath,
// enforced by hdlint), and nothing on the record side takes a lock.
package obs

// Serving bundles the observability surface of one serving process:
// the latency histogram families, the per-backend stage accumulator,
// the trace sampler, and the reliability event journal. A nil *Serving
// (observability not wired) is valid everywhere — record calls on nil
// components are cheap no-ops.
type Serving struct {
	// ReqLatency is per-request end-to-end latency through the
	// micro-batcher, in nanoseconds.
	ReqLatency *Histogram
	// BatchWait is the coalesce wait per flushed batch — first
	// enqueue to dispatch — in nanoseconds.
	BatchWait *Histogram
	// BatchSize is rows per flushed batch.
	BatchSize *Histogram
	// EncodeTime and ScoreTime are the engine's per-batch encode and
	// score phase wall times, in nanoseconds.
	EncodeTime *Histogram
	ScoreTime  *Histogram
	// ColdLoad is tenant cold-load latency (store read + view
	// build), in nanoseconds.
	ColdLoad *Histogram
	// Stages accumulates cumulative per-stage wall time per backend.
	Stages *StageStats
	// Tracer samples full per-request stage traces into a ring.
	Tracer *Tracer
	// Journal records reliability and tenant lifecycle events.
	Journal *Journal
}

// NewServing builds the full observability bundle. sampleEvery traces
// every Nth request (0 disables trace sampling; correlation IDs are
// still minted), traceRing and eventRing bound the in-memory history
// served at /trace and /events.
func NewServing(sampleEvery, traceRing, eventRing int) *Serving {
	return &Serving{
		ReqLatency: NewHistogram(),
		BatchWait:  NewHistogram(),
		BatchSize:  NewHistogram(),
		EncodeTime: NewHistogram(),
		ScoreTime:  NewHistogram(),
		ColdLoad:   NewHistogram(),
		Stages:     NewStageStats(),
		Tracer:     NewTracer(sampleEvery, traceRing),
		Journal:    NewJournal(eventRing),
	}
}
