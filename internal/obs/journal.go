package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Event types recorded by the journal. The set covers the reliability
// lifecycle (scrub → quarantine/mask → repair → swap), tenant
// residency churn, and model republishing, so the full self-healing
// story of a serving process is reconstructible from the sequence.
const (
	EvScrub          = "scrub"            // non-clean scrub verdict
	EvQuarantine     = "quarantine"       // learner alpha-masked out of the vote
	EvDimMask        = "dim_mask"         // dimension words masked within a learner
	EvUnmask         = "unmask"           // learner restored to full vote
	EvRepair         = "repair"           // repair attempt outcome (Detail names the source)
	EvSwap           = "engine_swap"      // serving engine atomically replaced
	EvAdopt          = "adopt"            // monitor adopted a foreign engine as baseline
	EvRetrain        = "retrain"          // trainer refit (base republish when swapped)
	EvInject         = "inject"           // chaos fault injection
	EvTenantEvict    = "tenant_evict"     // LRU pushed a resident tenant view out
	EvTenantColdLoad = "tenant_cold_load" // tenant delta loaded from the store
	EvTenantRebuild  = "tenant_rebuild"   // resident view rebuilt onto a new base
	EvTenantCompact  = "tenant_compact"   // delta journal folded into a full record
)

// Event is one journal entry. Seq is a process-monotonic sequence
// number (dense, starts at 1), Corr groups the events of one logical
// pass (one scrub/repair cycle, one retrain, one request), and the
// attribution fields are filled where they apply.
type Event struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Type     string    `json:"type"`
	Corr     uint64    `json:"corr,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
	Learners []int     `json:"learners,omitempty"`
	Segments []int     `json:"segments,omitempty"`
	Version  uint64    `json:"version,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// Journal is a bounded in-memory ring of typed events, optionally
// mirrored to a JSONL file. Appends are rare (reliability and tenant
// lifecycle actions, not requests), so a single mutex around the ring
// and the file encoder is fine; the mutex is a leaf — Append never
// calls back into any other subsystem, so it is safe to append while
// holding monitor or registry locks.
type Journal struct {
	corr atomic.Uint64 // pass-correlation IDs

	mu   sync.Mutex
	ring []Event
	seq  uint64
	file *os.File
	enc  *json.Encoder
}

// NewJournal builds a journal retaining the last ringCap events.
// ringCap <= 0 defaults to 1024.
func NewJournal(ringCap int) *Journal {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &Journal{ring: make([]Event, ringCap)}
}

// Persist mirrors every subsequent append to a JSONL file (one event
// per line), creating or appending to path. Conventionally the file
// sits next to the reliability state file in the checkpoint directory.
func (j *Journal) Persist(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: open events file: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file != nil {
		j.file.Close()
	}
	j.file = f
	j.enc = json.NewEncoder(f)
	return nil
}

// Close stops JSONL mirroring and closes the file, if any.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.enc = nil
	if j.file == nil {
		return nil
	}
	err := j.file.Close()
	j.file = nil
	return err
}

// NewCorr mints a correlation ID grouping the events of one logical
// pass. Nil-safe (returns 0, the "uncorrelated" ID).
func (j *Journal) NewCorr() uint64 {
	if j == nil {
		return 0
	}
	return j.corr.Add(1)
}

// Append stamps e with the next sequence number and the current wall
// time, stores it in the ring, and mirrors it to the JSONL file when
// persistence is enabled. Returns the assigned sequence number; nil
// receiver drops the event and returns 0.
func (j *Journal) Append(e Event) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	e.Time = time.Now()
	j.ring[(j.seq-1)%uint64(len(j.ring))] = e
	if j.enc != nil {
		// Best-effort: a full disk must not take down serving.
		_ = j.enc.Encode(&e)
	}
	return j.seq
}

// Seq reports the sequence number of the newest event (0 = none).
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Events returns retained events with Seq > since, oldest first, at
// most max (max <= 0 returns the whole retained window).
func (j *Journal) Events(since uint64, max int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	lo := uint64(1)
	if n := uint64(len(j.ring)); j.seq > n {
		lo = j.seq - n + 1
	}
	if since+1 > lo {
		lo = since + 1
	}
	if lo > j.seq {
		return []Event{}
	}
	kept := j.seq - lo + 1
	if max > 0 && uint64(max) < kept {
		// Keep the newest max events of the requested range.
		lo = j.seq - uint64(max) + 1
		kept = uint64(max)
	}
	out := make([]Event, 0, kept)
	for s := lo; s <= j.seq; s++ {
		out = append(out, j.ring[(s-1)%uint64(len(j.ring))])
	}
	return out
}
