package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage indices for Span timings, in pipeline order.
//
// Admission is HTTP parse + validation, Queue the micro-batcher
// coalesce wait (enqueue → batch dispatch), Encode and Score the
// engine's batch phases (Score includes the fused per-learner
// aggregation — the scoring kernels interleave similarity and
// alpha-weighted voting for bit-identity, so they are timed as one
// phase), and Aggregate the batch epilogue: result assembly and
// per-request delivery after the engine returns.
const (
	StageAdmission = iota
	StageQueue
	StageEncode
	StageScore
	StageAggregate
	NumStages
)

// StageNames maps stage indices to exposition labels.
var StageNames = [NumStages]string{"admission", "queue", "encode", "score", "aggregate"}

// Span is one request's stage record, threaded from HTTP admission
// through the micro-batcher into the engine. The serving layer embeds
// it in its per-request state, so stamping a span never allocates;
// only sampled spans are copied into the trace ring at completion.
type Span struct {
	Corr      uint64    `json:"corr"`
	Batch     uint64    `json:"batch"`
	Tenant    string    `json:"tenant,omitempty"`
	Backend   string    `json:"backend,omitempty"`
	BatchSize int       `json:"batch_size,omitempty"`
	Start     time.Time `json:"start"`
	// StageNS is indexed by the Stage* constants; the JSON array
	// order matches StageNames.
	StageNS [NumStages]int64 `json:"stage_ns"`
	TotalNS int64            `json:"total_ns"`
	Err     string           `json:"error,omitempty"`
}

// Stamp adds d to one stage's accumulated time. Nil receiver is a
// no-op so unsampled requests can share the call sites.
//
//hd:hotpath
func (sp *Span) Stamp(stage int, d int64) {
	if sp == nil {
		return
	}
	sp.StageNS[stage] += d
}

// Tracer mints correlation and batch IDs and keeps the bounded ring of
// sampled spans behind GET /trace. ID minting is one atomic add;
// sampling is a modulus on the correlation ID, so "every Nth request"
// holds exactly without per-request randomness.
type Tracer struct {
	every uint64 // sample every Nth request; 0 disables sampling
	corr  atomic.Uint64
	batch atomic.Uint64

	mu   sync.Mutex
	ring []Span
	n    uint64 // total spans recorded; ring cursor = n % len(ring)
}

// NewTracer builds a tracer sampling every Nth admitted request into a
// ring of ringCap spans. sampleEvery <= 0 disables sampling (IDs are
// still minted); ringCap <= 0 defaults to 256.
func NewTracer(sampleEvery, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = 256
	}
	t := &Tracer{ring: make([]Span, ringCap)}
	if sampleEvery > 0 {
		t.every = uint64(sampleEvery)
	}
	return t
}

// Admit mints the request's correlation ID and reports whether this
// request is sampled. Nil receiver mints nothing and never samples.
func (t *Tracer) Admit() (corr uint64, sampled bool) {
	if t == nil {
		return 0, false
	}
	corr = t.corr.Add(1)
	return corr, t.every > 0 && corr%t.every == 0
}

// NextBatch mints a batch ID for one coalesced flush. Nil-safe.
func (t *Tracer) NextBatch() uint64 {
	if t == nil {
		return 0
	}
	return t.batch.Add(1)
}

// Record copies a completed sampled span into the ring.
func (t *Tracer) Record(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.n%uint64(len(t.ring))] = *sp
	t.n++
	t.mu.Unlock()
}

// Traces returns up to max sampled spans, oldest first. max <= 0
// returns the whole retained window.
func (t *Tracer) Traces(max int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.n
	if kept > uint64(len(t.ring)) {
		kept = uint64(len(t.ring))
	}
	if max > 0 && uint64(max) < kept {
		kept = uint64(max)
	}
	out := make([]Span, 0, kept)
	for i := t.n - kept; i < t.n; i++ {
		out = append(out, t.ring[i%uint64(len(t.ring))])
	}
	return out
}

// SampleEvery reports the sampling period (0 = disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Sampled reports how many spans have been recorded in total.
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Corrs reports how many correlation IDs have been minted.
func (t *Tracer) Corrs() uint64 {
	if t == nil {
		return 0
	}
	return t.corr.Load()
}
