package obs

import (
	"bufio"
	"encoding/json"
	"math/bits"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	// Each value v lands in bucket bits.Len64(v): the inclusive
	// upper bound of bucket i is 2^i - 1.
	values := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1 << 40}
	for _, v := range values {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(values)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(values))
	}
	wantSum := uint64(0)
	for _, v := range values {
		wantSum += v
	}
	if snap.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", snap.Sum, wantSum)
	}
	var want [histBuckets]uint64
	for _, v := range values {
		i := bits.Len64(v)
		if i >= histBuckets {
			i = histBuckets - 1
		}
		want[i]++
	}
	if snap.Counts != want {
		t.Fatalf("counts = %v, want %v", snap.Counts, want)
	}
	// Bucket invariant: every value is <= its bucket's bound and >
	// the previous bucket's bound.
	for _, v := range values {
		i := bits.Len64(v)
		if i >= histBuckets {
			i = histBuckets - 1
			if v <= BucketBound(i-1) {
				t.Fatalf("overflow bucket holds %d <= %d", v, BucketBound(i-1))
			}
			continue
		}
		if v > BucketBound(i) {
			t.Fatalf("value %d above bucket %d bound %d", v, i, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Fatalf("value %d not above bucket %d bound %d", v, i-1, BucketBound(i-1))
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	total := uint64(0)
	for _, c := range snap.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", n)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{0, 5, 5, 900, 1 << 50} {
		h.Observe(v)
	}
	var b strings.Builder
	h.Snapshot().WriteProm(&b, "x_seconds", "test family", 1e9)
	out := b.String()
	if !strings.HasPrefix(out, "# HELP x_seconds test family\n# TYPE x_seconds histogram\n") {
		t.Fatalf("missing HELP/TYPE header:\n%s", out)
	}
	// Cumulative buckets must be monotonic and end at +Inf == count.
	last, sawInf := uint64(0), false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_seconds_bucket") {
			continue
		}
		var cum uint64
		if _, err := fmtSscanBucket(line, &cum); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < last {
			t.Fatalf("non-monotonic cumulative buckets:\n%s", out)
		}
		last = cum
		sawInf = sawInf || strings.Contains(line, `le="+Inf"`)
	}
	if !sawInf {
		t.Fatalf("no +Inf bucket:\n%s", out)
	}
	if last != 5 {
		t.Fatalf("+Inf cumulative = %d, want 5:\n%s", last, out)
	}
	if !strings.Contains(out, "x_seconds_count 5\n") {
		t.Fatalf("missing _count:\n%s", out)
	}
}

// fmtSscanBucket pulls the sample value off a _bucket line.
func fmtSscanBucket(line string, cum *uint64) (int, error) {
	fields := strings.Fields(line)
	var err error
	*cum, err = parseUint(fields[len(fields)-1])
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		v = v*10 + uint64(s[i]-'0')
	}
	return v, nil
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(3, 8)
	sampledCorrs := []uint64{}
	for i := 0; i < 10; i++ {
		corr, sampled := tr.Admit()
		if corr != uint64(i+1) {
			t.Fatalf("corr = %d, want %d", corr, i+1)
		}
		if sampled {
			sampledCorrs = append(sampledCorrs, corr)
		}
	}
	want := []uint64{3, 6, 9}
	if len(sampledCorrs) != len(want) {
		t.Fatalf("sampled %v, want %v", sampledCorrs, want)
	}
	for i := range want {
		if sampledCorrs[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampledCorrs, want)
		}
	}
	if tr.Corrs() != 10 {
		t.Fatalf("corrs = %d, want 10", tr.Corrs())
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 1; i <= 10; i++ {
		tr.Record(&Span{Corr: uint64(i), Start: time.Now()})
	}
	got := tr.Traces(0)
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if sp.Corr != uint64(7+i) {
			t.Fatalf("span %d corr = %d, want %d (oldest-first)", i, sp.Corr, 7+i)
		}
	}
	if got := tr.Traces(2); len(got) != 2 || got[1].Corr != 10 {
		t.Fatalf("Traces(2) = %v", got)
	}
	if tr.Sampled() != 10 {
		t.Fatalf("sampled = %d, want 10", tr.Sampled())
	}
}

func TestSpanStampAllocs(t *testing.T) {
	sp := &Span{}
	if n := testing.AllocsPerRun(1000, func() { sp.Stamp(StageEncode, 7) }); n != 0 {
		t.Fatalf("Stamp allocates %.1f/op, want 0", n)
	}
	var nilSpan *Span
	nilSpan.Stamp(StageScore, 1) // must not panic
}

func TestJournalRingAndSince(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 7; i++ {
		seq := j.Append(Event{Type: EvScrub, Detail: "pass"})
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if j.Seq() != 7 {
		t.Fatalf("Seq = %d", j.Seq())
	}
	all := j.Events(0, 0)
	if len(all) != 4 || all[0].Seq != 4 || all[3].Seq != 7 {
		t.Fatalf("retained window wrong: %+v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("non-dense sequence: %+v", all)
		}
		if all[i].Time.Before(all[i-1].Time) {
			t.Fatalf("time went backwards: %+v", all)
		}
	}
	if got := j.Events(5, 0); len(got) != 2 || got[0].Seq != 6 {
		t.Fatalf("Events(since=5) = %+v", got)
	}
	if got := j.Events(0, 2); len(got) != 2 || got[1].Seq != 7 {
		t.Fatalf("Events(max=2) = %+v", got)
	}
	if got := j.Events(7, 0); len(got) != 0 {
		t.Fatalf("Events(since=newest) = %+v", got)
	}
}

func TestJournalPersistJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	j := NewJournal(8)
	j.Append(Event{Type: EvInject, Detail: "before persist (not mirrored)"})
	if err := j.Persist(path); err != nil {
		t.Fatal(err)
	}
	corr := j.NewCorr()
	j.Append(Event{Type: EvScrub, Corr: corr, Learners: []int{2}})
	j.Append(Event{Type: EvRepair, Corr: corr, Learners: []int{2}, Detail: "rethreshold"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("mirrored %d events, want 2: %+v", len(lines), lines)
	}
	if lines[0].Type != EvScrub || lines[1].Type != EvRepair {
		t.Fatalf("wrong order: %+v", lines)
	}
	if lines[0].Corr != corr || lines[1].Corr != corr {
		t.Fatalf("correlation lost: %+v", lines)
	}
	if lines[1].Seq != lines[0].Seq+1 {
		t.Fatalf("non-monotonic seq on disk: %+v", lines)
	}
}

func TestStageStats(t *testing.T) {
	s := NewStageStats()
	var ns [NumStages]int64
	ns[StageEncode], ns[StageScore] = 100, 300
	s.Record("packed-binary", 32, &ns)
	s.Record("packed-binary", 16, &ns)
	ns[StageEncode], ns[StageScore] = 50, 70
	s.Record("float", 8, &ns)
	snaps := s.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot = %+v", snaps)
	}
	if snaps[0].Backend != "packed-binary" || snaps[0].Rows != 48 || snaps[0].Batches != 2 {
		t.Fatalf("packed slot = %+v", snaps[0])
	}
	if snaps[0].NS[StageEncode] != 200 || snaps[0].NS[StageScore] != 600 {
		t.Fatalf("packed stage ns = %+v", snaps[0])
	}
	if snaps[1].Backend != "float" || snaps[1].NS[StageScore] != 70 {
		t.Fatalf("float slot = %+v", snaps[1])
	}
}

func TestNilSafety(t *testing.T) {
	var (
		h  *Histogram
		tr *Tracer
		j  *Journal
		st *StageStats
	)
	h.Observe(1)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	if corr, sampled := tr.Admit(); corr != 0 || sampled {
		t.Fatal("nil tracer admitted")
	}
	tr.Record(&Span{})
	if tr.Traces(0) != nil || tr.NextBatch() != 0 {
		t.Fatal("nil tracer not inert")
	}
	if j.Append(Event{Type: EvSwap}) != 0 || j.Events(0, 0) != nil || j.NewCorr() != 0 {
		t.Fatal("nil journal not inert")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var ns [NumStages]int64
	st.Record("float", 1, &ns)
	if st.Snapshot() != nil {
		t.Fatal("nil stage stats not inert")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) * 7919)
	}
}

func BenchmarkSpanStamp(b *testing.B) {
	sp := &Span{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Stamp(StageScore, int64(i))
	}
}
