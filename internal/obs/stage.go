package obs

import (
	"sync"
	"sync/atomic"
)

// StageTimes accumulates one batch call's per-phase engine wall time.
// The engine's internal workers add block-granular measurements
// atomically, so a single StageTimes can sit on the caller's stack
// frame while the parallel encode/score workers fill it in.
type StageTimes struct {
	EncodeNS atomic.Int64
	ScoreNS  atomic.Int64
}

// backendStages is the cumulative per-stage account for one backend.
type backendStages struct {
	name    string
	ns      [NumStages]atomic.Int64
	batches atomic.Uint64
	rows    atomic.Uint64
}

// StageStats accumulates cumulative per-stage wall time per backend.
// The record path is lock-free: an atomic slice snapshot is scanned
// for the backend slot (at most a handful of entries — "float" and
// "packed-binary" in practice); registration of a new backend is the
// only mutex-guarded operation.
type StageStats struct {
	mu    sync.Mutex
	slots atomic.Pointer[[]*backendStages]
}

// NewStageStats returns an empty accumulator.
func NewStageStats() *StageStats {
	s := &StageStats{}
	empty := []*backendStages{}
	s.slots.Store(&empty)
	return s
}

func (s *StageStats) slot(backend string) *backendStages {
	for _, b := range *s.slots.Load() {
		if b.name == backend {
			return b
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.slots.Load()
	for _, b := range cur {
		if b.name == backend {
			return b
		}
	}
	b := &backendStages{name: backend}
	next := make([]*backendStages, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = b
	s.slots.Store(&next)
	return b
}

// Record adds one batch's stage times to a backend's cumulative
// account. ns is indexed by the Stage* constants; zero entries are
// added too (cheap) so callers can pass a partially filled array.
// Nil receiver is a no-op.
func (s *StageStats) Record(backend string, rows int, ns *[NumStages]int64) {
	if s == nil {
		return
	}
	b := s.slot(backend)
	for i := 0; i < NumStages; i++ {
		if ns[i] != 0 {
			b.ns[i].Add(ns[i])
		}
	}
	b.batches.Add(1)
	b.rows.Add(uint64(rows))
}

// StageSnapshot is one backend's cumulative stage account.
type StageSnapshot struct {
	Backend string           `json:"backend"`
	NS      [NumStages]int64 `json:"stage_ns"`
	Batches uint64           `json:"batches"`
	Rows    uint64           `json:"rows"`
}

// Snapshot returns the cumulative account per backend, in registration
// order. Nil receiver returns nil.
func (s *StageStats) Snapshot() []StageSnapshot {
	if s == nil {
		return nil
	}
	slots := *s.slots.Load()
	out := make([]StageSnapshot, 0, len(slots))
	for _, b := range slots {
		snap := StageSnapshot{Backend: b.name, Batches: b.batches.Load(), Rows: b.rows.Load()}
		for i := 0; i < NumStages; i++ {
			snap.NS[i] = b.ns[i].Load()
		}
		out = append(out, snap)
	}
	return out
}
