package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

const (
	// histShards spreads concurrent recorders across independent
	// atomic bucket arrays; merged at scrape time. Power of two.
	histShards = 16
	// histBuckets fixes the bucket count: bucket i holds values
	// v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), so the
	// upper bound of bucket i is 2^i - 1 native units (bucket 0
	// holds exactly v == 0). The last bucket absorbs everything
	// larger (+Inf): 2^30 ns ≈ 1.07 s, far beyond any serving
	// deadline, and 2^30 rows beyond any batch cap.
	histBuckets = 32
)

// histShard is one shard's bucket array. The trailing pad keeps
// adjacent shards from sharing a cache line on the sum/count words.
type histShard struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
	_      [6]uint64
}

// Histogram is a lock-free fixed-bucket histogram with power-of-two
// bucket boundaries. Recording is wait-free (three atomic adds) and
// allocation-free; scrape-side readers merge the shards into a
// consistent-enough snapshot (buckets, sum, and count are read without
// a barrier — standard for monitoring counters).
//
// Shard selection hashes the observed value rather than the runtime P:
// Go does not expose processor identity without runtime internals, and
// nanosecond-scale durations carry enough low-bit entropy that
// concurrent recorders land on different shards with high probability.
// Low-entropy streams (e.g. a constant batch size) collapse onto one
// shard, but those record at per-batch, not per-request, rates.
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value in native units (nanoseconds for latency
// families, rows for size families). Safe for concurrent use; nil
// receiver is a no-op.
//
//hd:hotpath
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	x := v
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	s := &h.shards[x&(histShards-1)]
	i := bits.Len64(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	s.counts[i].Add(1)
	s.sum.Add(v)
	s.count.Add(1)
}

// HistSnapshot is a merged point-in-time view of a Histogram. Counts
// are per-bucket (not cumulative); bucket i's inclusive upper bound is
// 2^i - 1 native units, with the last bucket unbounded.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Sum    uint64
	Count  uint64
}

// Snapshot merges the shards. Nil receiver yields a zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var snap HistSnapshot
	if h == nil {
		return snap
	}
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range sh.counts {
			snap.Counts[i] += sh.counts[i].Load()
		}
		snap.Sum += sh.sum.Load()
		snap.Count += sh.count.Load()
	}
	return snap
}

// BucketBound returns bucket i's inclusive upper bound in native
// units, or ^uint64(0) for the overflow bucket.
func BucketBound(i int) uint64 {
	if i >= histBuckets-1 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(i) - 1
}

// WriteProm writes the snapshot as one Prometheus histogram family:
// HELP/TYPE header, cumulative le buckets, _sum, and _count. scale
// divides native units into exposition units — 1e9 for
// nanoseconds→seconds families, 1 for count-valued families.
func (s HistSnapshot) WriteProm(w io.Writer, name, help string, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i := 0; i < histBuckets-1; i++ {
		cum += s.Counts[i]
		// Skip the long run of empty leading/trailing buckets but
		// always keep at least the first bucket of each populated
		// region plus a final pre-Inf bound, so series stay sparse
		// without losing cumulative correctness.
		if s.Counts[i] == 0 && !(i+1 < histBuckets && s.Counts[i+1] != 0) {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(BucketBound(i))/scale, cum)
	}
	cum += s.Counts[histBuckets-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)/scale)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
