// Package par provides the shared data-parallel loop used by every batch
// stage of the inference engine: encoding rows, scoring encodings, and
// evaluating ensembles. It replaces the hand-rolled worker pools that used
// to live in encoding, onlinehd, and boosthd with one implementation that
// hands out index chunks (amortizing synchronization) and gives each
// worker a stable id so callers can maintain per-worker scratch buffers.
package par

import (
	"runtime"
	"sync"
)

// Workers returns the worker count for n independent items: GOMAXPROCS
// capped by n, never below 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunk picks the dynamic-scheduling grain for n items over w workers:
// small enough to balance uneven work, large enough that the shared
// counter isn't contended per item.
func chunk(n, w int) int {
	c := n / (w * 8)
	if c < 1 {
		c = 1
	}
	return c
}

// ForEach runs fn(i) for every i in [0,n) across Workers(n) goroutines.
// The first error cancels remaining work (in-flight items still finish)
// and is returned. fn must be safe for concurrent invocation on distinct
// indices.
func ForEach(n int, fn func(i int) error) error {
	return ForEachWorker(n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker id (0 <= worker < Workers(n))
// passed through, so callers can index per-worker scratch state without
// synchronization.
func ForEachWorker(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	grain := chunk(n, workers)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		next  int
		fatal error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				if fatal != nil || next >= n {
					mu.Unlock()
					return
				}
				lo := next
				hi := lo + grain
				if hi > n {
					hi = n
				}
				next = hi
				mu.Unlock()
				for i := lo; i < hi; i++ {
					if err := fn(worker, i); err != nil {
						mu.Lock()
						if fatal == nil {
							fatal = err
						}
						mu.Unlock()
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return fatal
}
