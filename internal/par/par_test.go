package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		hits := make([]int32, n)
		if err := ForEach(n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(100, func(i int) error {
		if i == 41 {
			return fmt.Errorf("row %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

func TestForEachWorkerIDsAreDisjoint(t *testing.T) {
	n := 500
	workers := Workers(n)
	// Each worker id must stay within [0, workers) and two goroutines must
	// never share an id concurrently (per-worker scratch depends on it).
	inUse := make([]int32, workers)
	err := ForEachWorker(n, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d outside [0,%d)", w, workers)
		}
		if atomic.AddInt32(&inUse[w], 1) != 1 {
			return fmt.Errorf("worker id %d used concurrently", w)
		}
		defer atomic.AddInt32(&inUse[w], -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachErrorStopsScheduling(t *testing.T) {
	var calls int64
	boom := errors.New("early")
	_ = ForEach(100000, func(i int) error {
		atomic.AddInt64(&calls, 1)
		return boom
	})
	if c := atomic.LoadInt64(&calls); c >= 100000 {
		t.Fatalf("error did not stop scheduling: %d calls", c)
	}
}

func TestForEachConcurrentWrites(t *testing.T) {
	n := 2048
	out := make([]int, n)
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := ForEach(n, func(i int) error {
		out[i] = i * i
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct indices, want %d", len(seen), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
