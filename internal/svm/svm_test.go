package svm

import (
	"math/rand"
	"testing"
)

func blobs(n int, noise float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 3
		y[i] = c
		X[i] = make([]float64, 4)
		for j := range X[i] {
			X[i][j] = noise * rng.NormFloat64()
		}
		X[i][c] += 2
	}
	return X, y
}

func TestFitValidation(t *testing.T) {
	X, y := blobs(9, 0.1, 1)
	if _, err := Fit(nil, nil, 2, DefaultConfig()); err == nil {
		t.Error("expected empty error")
	}
	if _, err := Fit(X, y[:2], 3, DefaultConfig()); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := Fit(X, y, 1, DefaultConfig()); err == nil {
		t.Error("expected classes error")
	}
	bad := DefaultConfig()
	bad.Lambda = 0
	if _, err := Fit(X, y, 3, bad); err == nil {
		t.Error("expected lambda error")
	}
	bad = DefaultConfig()
	bad.Epochs = 0
	if _, err := Fit(X, y, 3, bad); err == nil {
		t.Error("expected epochs error")
	}
	if _, err := Fit(X, []int{5, 0, 0, 0, 0, 0, 0, 0, 0}, 3, DefaultConfig()); err == nil {
		t.Error("expected label error")
	}
}

func TestSVMLearnsSeparableData(t *testing.T) {
	X, y := blobs(300, 0.4, 2)
	c, err := Fit(X[:200], y[:200], 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Evaluate(X[200:], y[200:])
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("svm accuracy %v, want >= 0.9", acc)
	}
}

func TestBinaryProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		y[i] = c
		X[i] = []float64{float64(2*c-1) + 0.3*rng.NormFloat64(), rng.NormFloat64()}
	}
	c, err := Fit(X, y, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := c.Evaluate(X, y)
	if acc < 0.95 {
		t.Errorf("binary svm accuracy %v", acc)
	}
	// The separating weight must live on feature 0.
	w := c.W[1]
	if w[0] <= 0 {
		t.Errorf("class-1 weight on feature 0 = %v, want positive", w[0])
	}
}

func TestDecisionValuesShape(t *testing.T) {
	X, y := blobs(30, 0.2, 4)
	c, err := Fit(X, y, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := c.DecisionValues(X[0])
	if len(d) != 3 {
		t.Fatalf("decision values len = %d", len(d))
	}
	best := 0
	for k := 1; k < 3; k++ {
		if d[k] > d[best] {
			best = k
		}
	}
	if best != c.Predict(X[0]) {
		t.Error("Predict disagrees with argmax DecisionValues")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	X, y := blobs(60, 0.5, 5)
	c1, err := Fit(X, y, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Fit(X, y, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range c1.W {
		for j := range c1.W[k] {
			if c1.W[k][j] != c2.W[k][j] {
				t.Fatal("same seed must give identical weights")
			}
		}
	}
}

func TestPredictBatch(t *testing.T) {
	X, y := blobs(30, 0.2, 6)
	c, err := Fit(X, y, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := c.PredictBatch(X)
	for i := range pred {
		if pred[i] != c.Predict(X[i]) {
			t.Error("batch disagrees with single predict")
		}
	}
	if _, err := c.Evaluate(X, y[:2]); err == nil {
		t.Error("expected mismatch error")
	}
}
