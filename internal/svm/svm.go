// Package svm implements the linear-kernel SVM baseline of Table I as a
// one-vs-rest ensemble of binary hinge-loss classifiers trained with the
// Pegasos stochastic sub-gradient algorithm (Shalev-Shwartz et al.).
package svm

import (
	"fmt"
	"math/rand"
)

// Config controls Pegasos training.
type Config struct {
	Lambda float64 // regularization strength
	Epochs int     // passes over the data
	Seed   int64
}

// DefaultConfig returns a standard linear-SVM setup.
func DefaultConfig() Config {
	return Config{Lambda: 1e-4, Epochs: 20, Seed: 1}
}

// Classifier is a trained one-vs-rest linear SVM.
type Classifier struct {
	Cfg      Config
	Classes  int
	Features int
	W        [][]float64 // Classes x Features
	B        []float64   // Classes
}

// Fit trains one binary Pegasos classifier per class.
func Fit(X [][]float64, y []int, classes int, cfg Config) (*Classifier, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("svm: %d rows vs %d labels", n, len(y))
	}
	if classes < 2 {
		return nil, fmt.Errorf("svm: need >= 2 classes, got %d", classes)
	}
	if cfg.Lambda <= 0 {
		return nil, fmt.Errorf("svm: lambda must be positive, got %v", cfg.Lambda)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("svm: need >= 1 epoch, got %d", cfg.Epochs)
	}
	for i, l := range y {
		if l < 0 || l >= classes {
			return nil, fmt.Errorf("svm: label %d at %d outside [0,%d)", l, i, classes)
		}
	}
	features := len(X[0])
	c := &Classifier{
		Cfg:      cfg,
		Classes:  classes,
		Features: features,
		W:        make([][]float64, classes),
		B:        make([]float64, classes),
	}
	for k := 0; k < classes; k++ {
		c.W[k] = make([]float64, features)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*97))
		w := c.W[k]
		var b float64
		t := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			order := rng.Perm(n)
			for _, i := range order {
				t++
				eta := 1 / (cfg.Lambda * float64(t))
				yi := -1.0
				if y[i] == k {
					yi = 1.0
				}
				var margin float64
				for j, xv := range X[i] {
					margin += w[j] * xv
				}
				margin = yi * (margin + b)
				decay := 1 - eta*cfg.Lambda
				if decay < 0 {
					decay = 0
				}
				if margin < 1 {
					for j, xv := range X[i] {
						w[j] = decay*w[j] + eta*yi*xv
					}
					b += eta * yi
				} else {
					for j := range w {
						w[j] *= decay
					}
				}
			}
		}
		c.B[k] = b
	}
	return c, nil
}

// DecisionValues returns the per-class margins w_k.x + b_k for one row.
func (c *Classifier) DecisionValues(x []float64) []float64 {
	out := make([]float64, c.Classes)
	for k := 0; k < c.Classes; k++ {
		var s float64
		for j, xv := range x {
			s += c.W[k][j] * xv
		}
		out[k] = s + c.B[k]
	}
	return out
}

// Predict returns the class with the largest margin.
func (c *Classifier) Predict(x []float64) int {
	d := c.DecisionValues(x)
	best := 0
	for k := 1; k < c.Classes; k++ {
		if d[k] > d[best] {
			best = k
		}
	}
	return best
}

// PredictBatch classifies each row of X.
func (c *Classifier) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = c.Predict(x)
	}
	return out
}

// Evaluate returns plain accuracy on a labeled set.
func (c *Classifier) Evaluate(X [][]float64, y []int) (float64, error) {
	if len(X) != len(y) || len(y) == 0 {
		return 0, fmt.Errorf("svm: bad evaluation set")
	}
	correct := 0
	for i, x := range X {
		if c.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y)), nil
}
