// Package boosthd is a pure-Go implementation of BoostHD — boosted
// hyperdimensional computing for reliable healthcare machine learning
// (Jeong et al., DATE 2025) — together with every substrate its
// evaluation depends on: the OnlineHD classifier, nonlinear
// hyperdimensional encoders, classical baselines (AdaBoost, Random
// Forest, gradient-boosted trees, linear SVM, MLP), synthetic wearable
// physiological datasets, bit-flip fault injection, and the
// random-matrix / span-utilization analysis of Section III.
//
// This root package re-exports the primary user-facing API; the full
// machinery lives under internal/. Quickstart:
//
//	cfg := boosthd.DefaultConfig(10000, 10, numClasses)
//	model, err := boosthd.Train(trainX, trainY, cfg)
//	pred, err := model.PredictBatch(testX)
//
// See examples/ for end-to-end pipelines and cmd/benchtables for the
// harness that regenerates every table and figure of the paper.
package boosthd

import (
	"io"

	core "boosthd/internal/boosthd"
	"boosthd/internal/dataset"
	"boosthd/internal/encoding"
	"boosthd/internal/faults"
	"boosthd/internal/infer"
	"boosthd/internal/obs"
	"boosthd/internal/onlinehd"
	"boosthd/internal/reliability"
	"boosthd/internal/serve"
	"boosthd/internal/signal"
	"boosthd/internal/synth"
	"boosthd/internal/trainer"
)

// Model is a trained BoostHD ensemble (Algorithm 1): OnlineHD weak
// learners over a partitioned hyperdimensional space combined by
// alpha-weighted voting.
type Model = core.Model

// Config configures a BoostHD ensemble.
type Config = core.Config

// Aggregation selects the ensemble inference rule.
type Aggregation = core.Aggregation

// Aggregation rules: Vote is the hard-vote reading of Algorithm 1, Score
// the soft (similarity-sum) reading.
const (
	Vote  = core.Vote
	Score = core.Score
)

// DefaultConfig returns the paper's ensemble hyperparameters for a total
// dimension, learner count, and class count.
func DefaultConfig(totalDim, numLearners, classes int) Config {
	return core.DefaultConfig(totalDim, numLearners, classes)
}

// Train fits a BoostHD ensemble on feature rows X with labels y.
func Train(X [][]float64, y []int, cfg Config) (*Model, error) {
	return core.Train(X, y, cfg)
}

// OnlineHD is the single-space baseline classifier BoostHD partitions
// (Hernandez-Cano et al., DATE 2021).
type OnlineHD = onlinehd.Model

// OnlineHDConfig configures an OnlineHD model.
type OnlineHDConfig = onlinehd.Config

// OnlineHDDefaultConfig returns the paper's OnlineHD hyperparameters.
func OnlineHDDefaultConfig(dim, classes int) OnlineHDConfig {
	return onlinehd.DefaultConfig(dim, classes)
}

// TrainOnlineHD fits an OnlineHD model; weights (nil = uniform) support
// boosting-style sample re-weighting.
func TrainOnlineHD(X [][]float64, y []int, weights []float64, cfg OnlineHDConfig) (*OnlineHD, error) {
	return onlinehd.Train(X, y, weights, cfg)
}

// Dataset is a labeled feature matrix with optional per-sample subjects.
type Dataset = dataset.Dataset

// SynthConfig configures a synthetic wearable-sensor dataset.
type SynthConfig = synth.Config

// Subject is a simulated study participant with the demographic
// attributes used by person-specific evaluation.
type Subject = synth.Subject

// WESAD returns the synthetic stand-in for the WESAD stress/affect
// dataset together with its subject roster.
func WESAD() (*Dataset, []Subject, error) { return synth.Build(synth.WESADConfig()) }

// NurseStress returns the synthetic stand-in for the Nurse Stress
// dataset.
func NurseStress() (*Dataset, []Subject, error) { return synth.Build(synth.NurseStressConfig()) }

// StressPredict returns the synthetic stand-in for the Stress-Predict
// dataset.
func StressPredict() (*Dataset, []Subject, error) { return synth.Build(synth.StressPredictConfig()) }

// BuildSynth synthesizes a dataset from a custom configuration.
func BuildSynth(cfg SynthConfig) (*Dataset, []Subject, error) { return synth.Build(cfg) }

// SubjectSplit partitions a dataset by subject units, the evaluation
// protocol of the paper.
func SubjectSplit(d *Dataset, subjects []Subject, testFraction float64, seed int64) (train, test *Dataset, testIDs []int, err error) {
	return synth.SubjectSplit(d, subjects, testFraction, seed)
}

// EncoderKind selects the feature-to-hyperspace activation.
type EncoderKind = encoding.Kind

// Encoder kinds.
const (
	Nonlinear = encoding.Nonlinear
	RFF       = encoding.RFF
	Linear    = encoding.Linear
)

// Projection selects where an encoder's random projection lives: the
// legacy stored Gaussian matrix, a materialized counter-based Rademacher
// matrix, or a rematerialized projection regenerated inside the encode
// kernels from a splitmix64 counter stream — O(1) encoder state and
// seed-sized checkpoints, bit-identical to the materialized seeded mode.
// Set it on Config.Projection; the zero value is the legacy encoder.
type Projection = encoding.Projection

// Projection modes.
const (
	ProjStored       = encoding.ProjStored
	ProjSeededStored = encoding.ProjSeededStored
	ProjSeeded       = encoding.ProjSeeded
)

// ParseProjection maps a CLI spelling ("stored", "seeded-stored",
// "seeded"/"remat") onto a projection mode.
var ParseProjection = encoding.ParseProjection

// Normalizer rescales feature columns with statistics fitted on training
// data (the paper fits normalization before model training).
type Normalizer = signal.Normalizer

// Normalization schemes.
const (
	ZScore = signal.ZScore
	MinMax = signal.MinMax
)

// FitNormalizer computes per-column statistics over training rows.
func FitNormalizer(rows [][]float64, kind signal.NormKind) (*Normalizer, error) {
	return signal.FitNormalizer(rows, kind)
}

// FaultInjector flips stored model bits with a per-bit probability — the
// paper's Figure 8 reliability protocol. Apply it to a trained ensemble
// with Model.InjectClassFaults, which also invalidates the scoring
// engine's cached norms.
type FaultInjector = faults.Injector

// NewFaultInjector builds a bit-flip injector with probability pb.
var NewFaultInjector = faults.NewInjector

// Engine serves predictions from a trained ensemble through a selected
// backend: float cosine scoring, or — after quantization — packed-binary
// Hamming scoring over bit-vector class memories.
type Engine = infer.Engine

// BinaryModel is the packed-binary deployment form of a trained ensemble:
// thresholded bit-vector class memories scored by XOR/popcount Hamming
// similarity, the representation wearable-class hardware runs natively.
type BinaryModel = infer.BinaryModel

// InferBackend selects an Engine's model representation.
type InferBackend = infer.Backend

// Engine backends.
const (
	FloatBackend        = infer.Float
	PackedBinaryBackend = infer.PackedBinary
)

// NewEngine returns a float-backend inference engine over a trained model.
func NewEngine(m *Model) *Engine { return infer.NewEngine(m) }

// NewBinaryEngine quantizes a trained model and returns a packed-binary
// inference engine.
func NewBinaryEngine(m *Model) (*Engine, error) { return infer.NewBinaryEngine(m) }

// Quantize thresholds a trained ensemble into its packed-binary form.
func Quantize(m *Model) (*BinaryModel, error) { return infer.Quantize(m) }

// NewEngineFromBinary wraps a cold-loaded binary snapshot in a
// packed-binary serving engine.
func NewEngineFromBinary(bm *BinaryModel) *Engine { return infer.NewEngineFromBinary(bm) }

// LoadModel reads a BoostHD ensemble checkpoint written by Model.Save.
// Checkpoints are versioned: foreign or newer-format blobs fail loudly,
// and class vectors install through the learners' lock-aware mutation
// API, so a reload into a serving process is always coherent.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// LoadOnlineHD reads an OnlineHD checkpoint written by OnlineHD.Save.
func LoadOnlineHD(r io.Reader) (*OnlineHD, error) { return onlinehd.Load(r) }

// LoadBinaryModel reads a quantized binary snapshot written by
// BinaryModel.Save. The result serves without re-quantization and
// without the float class memory (see BinaryModel.Frozen).
func LoadBinaryModel(r io.Reader) (*BinaryModel, error) { return infer.LoadBinary(r) }

// Server is the production serving layer: an adaptive micro-batcher
// that coalesces concurrent Predict calls into the engine's fused batch
// pipeline, with atomic hot-swap between checkpoints.
type Server = serve.Server

// ServeConfig tunes the micro-batcher (max batch, straggler wait,
// worker count, queue depth).
type ServeConfig = serve.Config

// ServeStats is a point-in-time snapshot of a Server's counters.
type ServeStats = serve.Stats

// NewServer starts a serving layer over an inference engine.
func NewServer(eng *Engine, cfg ServeConfig) (*Server, error) { return serve.NewServer(eng, cfg) }

// NewServeHandler exposes a Server over HTTP/JSON (/predict,
// /predict_batch, /healthz, /swap) with the default hardening: body
// and batch-row caps at their defaults, /swap disabled, no trainer.
var NewServeHandler = serve.Handler

// ServeHandlerConfig hardens and extends the HTTP layer: request body
// cap (413 beyond), batch row cap, the /swap checkpoint allowlist
// root, and the streaming trainer behind /observe and /retrain.
type ServeHandlerConfig = serve.HandlerConfig

// NewConfiguredServeHandler exposes a Server over HTTP/JSON with
// explicit hardening and trainer wiring.
var NewConfiguredServeHandler = serve.NewHandler

// LoadServeEngine builds a serving engine from a checkpoint file:
// "float" for the ensemble checkpoint, "binary" for a quantized engine
// (from a binary snapshot directly, or by quantizing a float
// checkpoint).
var LoadServeEngine = serve.LoadEngine

// Trainer is the streaming continual-learning subsystem: labeled
// samples flow in through Observe — buffered in a bounded label-aware
// store (sliding window + per-class reservoirs) and applied to the live
// model as incremental OnlineHD steps under the learners' write locks —
// and Retrain refits a replacement ensemble over the buffer off the
// serving path, installing it through the server's atomic engine swap
// with zero dropped requests.
type Trainer = trainer.Trainer

// TrainerConfig tunes the trainer: buffer capacity, retrain threshold
// and period, swap-time backend, online-update toggle.
type TrainerConfig = trainer.Config

// TrainerBuffer is the bounded label-aware sample buffer behind a
// Trainer.
type TrainerBuffer = trainer.Buffer

// RetrainReport describes one Trainer.Retrain call.
type RetrainReport = serve.RetrainReport

// TrainerStatus is a point-in-time snapshot of trainer counters.
type TrainerStatus = serve.TrainerStatus

// NewTrainer builds a Trainer over the float model behind srv's
// current serving engine. A frozen binary snapshot (cold-loaded, no
// float class memory) is rejected.
func NewTrainer(srv *Server, cfg TrainerConfig) (*Trainer, error) {
	return trainer.New(srv, cfg)
}

// Delta is a tenant's copy-on-write personalization: replacement class
// memories for a few of the base ensemble's weak learners plus a
// private alpha slice. A delta view over the shared base predicts
// bit-for-bit like a fully materialized per-tenant model on both
// backends while sharing everything it does not override.
type Delta = core.Delta

// TenantRegistry multiplexes one serving process across tenants: a
// tenant ID resolves to an engine view built from the shared base model
// plus the tenant's copy-on-write delta, with an LRU over resident
// views and cold loads from a write-through DeltaStore.
type TenantRegistry = serve.TenantRegistry

// TenantRegistryConfig tunes the registry (delta store, LRU capacity,
// lock-stripe shard count).
type TenantRegistryConfig = serve.TenantRegistryConfig

// TenantStats is a point-in-time snapshot of a TenantRegistry.
type TenantStats = serve.TenantStats

// DeltaStore is the per-tenant checkpoint store behind a registry.
type DeltaStore = serve.DeltaStore

// FileDeltaStore persists one delta record per tenant under a directory,
// plus an append journal of changed-learner patches so steady-state
// refit I/O is proportional to learners moved.
type FileDeltaStore = serve.FileDeltaStore

// NewFileDeltaStore opens a journaling delta store rooted at dir.
func NewFileDeltaStore(dir string) *FileDeltaStore {
	return serve.NewFileDeltaStore(dir)
}

// NewTenantRegistry builds a registry multiplexing srv's serving engine.
func NewTenantRegistry(srv *Server, cfg TenantRegistryConfig) (*TenantRegistry, error) {
	return serve.NewTenantRegistry(srv, cfg)
}

// TenantTrainer is the per-tenant continual-learning subsystem: tenant
// observations buffer privately (never touching the shared base), and a
// tenant retrain refits only that tenant's delta learners, installing
// the result through the registry.
type TenantTrainer = trainer.TenantTrainer

// TenantTrainerConfig tunes the tenant trainer (buffer capacity,
// retrain threshold, copy-on-write learner budget).
type TenantTrainerConfig = trainer.TenantConfig

// NewTenantTrainer builds a TenantTrainer installing deltas into reg.
func NewTenantTrainer(reg *TenantRegistry, cfg TenantTrainerConfig) (*TenantTrainer, error) {
	return trainer.NewTenantTrainer(reg, cfg)
}

// ReliabilityMonitor is the runtime integrity subsystem for a serving
// model: segmented integrity signatures over the model memory verified
// by a background scrubber, a held-out canary that scores each weak
// learner solo, two-tier quarantine — corrupted dimension words masked
// out of the vote, whole-learner alpha-masking as the criticality-
// ranked fallback — installed through an atomic engine swap, and
// surgical repair (per-learner re-threshold, per-segment checkpoint
// restore, or a trainer hot-retrain) — the paper's fault-tolerance
// claim turned into a live serving guarantee.
type ReliabilityMonitor = reliability.Monitor

// ReliabilityConfig tunes the monitor: scrub period, canary quarantine
// threshold, signature segment width and healthy-fraction floor for
// the dimension-vs-learner quarantine decision, checkpoint/trainer
// repair sources, and how versioned (locked) mutations are judged
// (strict, signed-update handoff, or trusted).
type ReliabilityConfig = reliability.Config

// ReliabilityStatus is a point-in-time snapshot of the monitor: the
// per-learner health ledger plus scrub/quarantine/repair counters.
type ReliabilityStatus = serve.ReliabilityStatus

// ScrubReport describes one Monitor.Scrub detection pass.
type ScrubReport = reliability.ScrubReport

// RepairReport describes one Monitor.Repair restoration pass.
type RepairReport = reliability.RepairReport

// NewReliabilityMonitor builds a Monitor over the model behind srv's
// current serving engine and signs it as the trusted baseline.
func NewReliabilityMonitor(srv *Server, cfg ReliabilityConfig) (*ReliabilityMonitor, error) {
	return reliability.New(srv, cfg)
}

// ServingObservability bundles a serving process's observability
// surface: lock-free sharded latency histograms (request, batch wait,
// batch size, encode, score, tenant cold load), cumulative per-backend
// stage timing, a sampled per-request stage tracer, and the typed
// reliability/tenant event journal. Wire it with Server.SetObs; the
// HTTP layer then exposes it through /metrics, /trace, and /events.
type ServingObservability = obs.Serving

// NewServingObservability builds the bundle. sampleEvery captures every
// Nth request's full stage trace (0 = no per-request traces; histograms
// and the journal are always live); traceRing and eventRing bound the
// retained history (0 = defaults).
func NewServingObservability(sampleEvery, traceRing, eventRing int) *ServingObservability {
	return obs.NewServing(sampleEvery, traceRing, eventRing)
}

// LatencyHistogram is a lock-free sharded fixed-bucket histogram with
// power-of-two bucket bounds; recording is allocation-free and safe on
// the serving hot path.
type LatencyHistogram = obs.Histogram

// ObsSpan is one sampled request's stage trace (admission, queue,
// encode, score, aggregate) with its correlation and batch IDs.
type ObsSpan = obs.Span

// ObsEvent is one typed entry in the reliability/tenant event journal:
// monotonic sequence, wall time, correlation ID, and learner/segment/
// tenant attribution.
type ObsEvent = obs.Event

// ObsJournal is the bounded event ring behind /events, optionally
// mirrored to a JSONL file.
type ObsJournal = obs.Journal

// Remask builds the serving engine for a quarantine mask: an
// alpha-masked view of base served through cur's backend, sharing the
// expensive backend state. Scoring skips masked learners entirely, so
// their (possibly corrupted) memory is never read.
var Remask = infer.Remask

// RemaskDims is the dimension-granular variant: healthy[i] non-nil
// keeps learner i voting over only its trusted dimensions (packed
// bitmask over the learner's local dimensions), while masked[i] true
// still zeroes the whole vote. Both scoring backends honor the masks.
var RemaskDims = infer.RemaskDims
