package boosthd_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"boosthd"
)

// TestPublicAPIEndToEnd drives the facade exactly as the README
// quickstart does: synthesize, split, normalize, train, evaluate.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := boosthd.SynthConfig{
		Name:            "api-test",
		NumSubjects:     5,
		SamplesPerState: 512,
		SmoothWindow:    30,
		WindowSize:      128,
		WindowStep:      64,
		Separability:    0.9,
		SensorNoise:     0.3,
		LabelNoise:      0.02,
		Seed:            5,
	}
	data, subjects, err := boosthd.BuildSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := data.Validate(); err != nil {
		t.Fatal(err)
	}
	train, test, testIDs, err := boosthd.SubjectSplit(data, subjects, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(testIDs) == 0 {
		t.Fatal("no test subjects")
	}
	norm, err := boosthd.FitNormalizer(train.X, boosthd.ZScore)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := norm.Apply(train.X); err != nil {
		t.Fatal(err)
	}
	if _, err := norm.Apply(test.X); err != nil {
		t.Fatal(err)
	}

	model, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(2000, 10, data.NumClasses))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := model.Evaluate(test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Errorf("end-to-end accuracy %v suspiciously low", acc)
	}

	online, err := boosthd.TrainOnlineHD(train.X, train.Y, nil,
		boosthd.OnlineHDDefaultConfig(2000, data.NumClasses))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := online.Evaluate(test.X, test.Y); err != nil {
		t.Fatal(err)
	}
}

// TestPublicDatasets builds each named dataset stand-in at reduced size
// through the config types the facade exports.
func TestPublicDatasetsConfigsExposed(t *testing.T) {
	// The three canonical builders exist; building the full-size ones is
	// covered by the experiments — here we only check the plumbing with
	// a custom small config per regime.
	for _, sep := range []float64{0.9, 0.55} {
		cfg := boosthd.SynthConfig{
			Name:            "plumbing",
			NumSubjects:     3,
			SamplesPerState: 256,
			SmoothWindow:    30,
			WindowSize:      128,
			WindowStep:      64,
			Separability:    sep,
			SensorNoise:     0.5,
			Seed:            9,
		}
		d, subs, err := boosthd.BuildSynth(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d.Len() == 0 || len(subs) != 3 {
			t.Fatalf("bad build: %d rows, %d subjects", d.Len(), len(subs))
		}
	}
}

// TestFaultInjectorExported exercises the re-exported fault injection on
// a trained model's class vectors.
func TestFaultInjectorExported(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inj, err := boosthd.NewFaultInjector(0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 500)
	for i := range data {
		data[i] = 1
	}
	if flips := inj.InjectFloat32(data); flips == 0 {
		t.Error("expected flips at pb=0.01")
	}
	if _, err := boosthd.NewFaultInjector(-1, rng); err == nil {
		t.Error("expected pb validation error")
	}
}

// TestServingFacade drives the checkpoint + serving exports end to end:
// save/load both checkpoint formats, start a micro-batching server, and
// hot-swap between backends under a few concurrent requests.
func TestServingFacade(t *testing.T) {
	cfg := boosthd.SynthConfig{
		Name:            "api-serve",
		NumSubjects:     5,
		SamplesPerState: 512,
		SmoothWindow:    30,
		WindowSize:      128,
		WindowStep:      64,
		Separability:    0.9,
		SensorNoise:     0.3,
		LabelNoise:      0.02,
		Seed:            6,
	}
	data, subjects, err := boosthd.BuildSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test, _, err := boosthd.SubjectSplit(data, subjects, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	model, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(800, 4, data.NumClasses))
	if err != nil {
		t.Fatal(err)
	}

	// Float checkpoint round trip.
	var ckpt bytes.Buffer
	if err := model.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	loaded, err := boosthd.LoadModel(&ckpt)
	if err != nil {
		t.Fatal(err)
	}

	// Binary snapshot round trip.
	bm, err := boosthd.Quantize(model)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := bm.Save(&snap); err != nil {
		t.Fatal(err)
	}
	cold, err := boosthd.LoadBinaryModel(&snap)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := boosthd.NewServer(boosthd.NewEngine(loaded), boosthd.ServeConfig{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	want, err := loaded.Predict(test.X[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Predict(test.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("served %d, direct %d", got, want)
	}
	if err := srv.Swap(boosthd.NewEngineFromBinary(cold)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Predict(test.X[i%len(test.X)]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Backend != "packed-binary" || st.Swaps != 1 || st.Served < 9 {
		t.Fatalf("stats after swap: %+v", st)
	}
}

// TestTrainerFacade drives the continual-learning exports: observe a
// labeled stream through a Trainer (incremental updates against live
// serving), then hot-retrain and verify the server swapped engines.
func TestTrainerFacade(t *testing.T) {
	cfg := boosthd.SynthConfig{
		Name:            "api-trainer",
		NumSubjects:     5,
		SamplesPerState: 512,
		SmoothWindow:    30,
		WindowSize:      128,
		WindowStep:      64,
		Separability:    0.9,
		SensorNoise:     0.3,
		LabelNoise:      0.02,
		Seed:            8,
	}
	data, subjects, err := boosthd.BuildSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test, _, err := boosthd.SubjectSplit(data, subjects, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	model, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(800, 4, data.NumClasses))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := boosthd.NewServer(boosthd.NewEngine(model), boosthd.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr, err := boosthd.NewTrainer(srv, boosthd.TrainerConfig{BufferCap: 128, MinRetrain: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range test.X {
		if _, err := srv.Predict(test.X[i]); err != nil {
			t.Fatal(err)
		}
		if err := tr.Observe(test.X[i], test.Y[i]); err != nil {
			t.Fatal(err)
		}
	}
	report, err := tr.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Swapped {
		t.Fatalf("retrain did not swap: %+v", report)
	}
	status := tr.Status()
	if status.Observed != uint64(len(test.X)) || status.Retrains != 1 {
		t.Fatalf("trainer status %+v", status)
	}
	if got := srv.Stats().Swaps; got != 1 {
		t.Fatalf("server swaps %d, want 1", got)
	}
	// The swapped-in engine still serves coherently.
	if _, err := srv.Predict(test.X[0]); err != nil {
		t.Fatal(err)
	}
}
