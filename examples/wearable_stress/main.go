// Wearable stress detection end to end: synthesize a WESAD-style
// multimodal recording cohort, run the paper's preprocessing pipeline
// (already inside the builder: moving-average filtering, sliding windows,
// statistical features), split by subject, normalize with training
// statistics, and compare BoostHD against OnlineHD.
//
//	go run ./examples/wearable_stress
package main

import (
	"fmt"
	"log"
	"time"

	"boosthd"
)

func main() {
	cfg := boosthd.SynthConfig{
		Name:            "WESAD-demo",
		NumSubjects:     10,
		SamplesPerState: 2048,
		SmoothWindow:    30,
		WindowSize:      128,
		WindowStep:      64,
		Separability:    0.9,
		SensorNoise:     0.3,
		LabelNoise:      0.02,
		Seed:            2024,
	}
	data, subjects, err := boosthd.BuildSynth(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d windows x %d features from %d subjects\n",
		data.Len(), data.NumFeatures(), len(subjects))

	train, test, testIDs, err := boosthd.SubjectSplit(data, subjects, 0.3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out subjects: %v (train %d / test %d windows)\n",
		testIDs, train.Len(), test.Len())

	// Normalize with training statistics only.
	norm, err := boosthd.FitNormalizer(train.X, boosthd.ZScore)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(train.X); err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(test.X); err != nil {
		log.Fatal(err)
	}

	run := func(name string, nl int) {
		cfg := boosthd.DefaultConfig(10000, nl, data.NumClasses)
		start := time.Now()
		m, err := boosthd.Train(train.X, train.Y, cfg)
		if err != nil {
			log.Fatal(err)
		}
		trainTime := time.Since(start)
		start = time.Now()
		acc, err := m.Evaluate(test.X, test.Y)
		if err != nil {
			log.Fatal(err)
		}
		perSample := time.Since(start).Seconds() / float64(test.Len())
		fmt.Printf("%-22s accuracy %.2f%%  train %v  inference %.1f us/sample\n",
			name, acc*100, trainTime.Round(time.Millisecond), perSample*1e6)
	}
	run("BoostHD (NL=10)", 10)
	run("OnlineHD (NL=1)", 1)
}
