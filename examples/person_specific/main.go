// Person-specific reliability (the paper's Table III protocol): hold out
// demographic cohorts — left-handed, female, young, older, short, tall —
// as unseen test subjects and measure how equitably each model performs.
// Healthcare deployments must not work only for the average wearer.
//
//	go run ./examples/person_specific
package main

import (
	"fmt"
	"log"

	"boosthd"
	"boosthd/internal/dataset"
	"boosthd/internal/synth"
)

func main() {
	data, subjects, err := boosthd.WESAD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WESAD-style cohort: %d subjects, %d windows\n\n", len(subjects), data.Len())

	fmt.Printf("%-14s %8s %8s  %s\n", "cohort", "BoostHD", "OnlineHD", "held-out subjects")
	for _, group := range synth.TableIIIGroups() {
		ids := synth.SelectSubjects(subjects, group)
		if len(ids) == 0 || len(ids) == len(subjects) {
			fmt.Printf("%-14s  (cohort empty or covers everyone — skipped)\n", group.Name)
			continue
		}
		train, test, err := dataset.SplitBySubjects(data, ids)
		if err != nil {
			log.Fatal(err)
		}
		// Private feature copies: normalization must not leak between
		// cohort evaluations that share the underlying dataset rows.
		for i, r := range train.X {
			train.X[i] = append([]float64(nil), r...)
		}
		for i, r := range test.X {
			test.X[i] = append([]float64(nil), r...)
		}
		norm, err := boosthd.FitNormalizer(train.X, boosthd.ZScore)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := norm.Apply(train.X); err != nil {
			log.Fatal(err)
		}
		if _, err := norm.Apply(test.X); err != nil {
			log.Fatal(err)
		}

		bm, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(8000, 10, data.NumClasses))
		if err != nil {
			log.Fatal(err)
		}
		bAcc, err := bm.Evaluate(test.X, test.Y)
		if err != nil {
			log.Fatal(err)
		}
		om, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(8000, 1, data.NumClasses))
		if err != nil {
			log.Fatal(err)
		}
		oAcc, err := om.Evaluate(test.X, test.Y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %7.2f%% %7.2f%%  %v\n", group.Name, bAcc*100, oAcc*100, ids)
	}
}
