// Person-specific serving (the paper's Table III concern, deployed): a
// single shared BoostHD base model serves every wearer, and each held-out
// subject personalizes it as a tenant — labeled windows flow in through
// /t/{tenant}/observe, /t/{tenant}/retrain refits only that tenant's
// copy-on-write delta learners, and /t/{tenant}/predict_batch answers
// from the tenant's view. The shared base is never written: its hash is
// identical before and after every personalization, so one wearer's
// adaptation cannot regress another's.
//
//	go run ./examples/person_specific
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"boosthd"
	"boosthd/internal/dataset"
	"boosthd/internal/synth"
)

func main() {
	data, subjects, err := boosthd.WESAD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WESAD-style cohort: %d subjects, %d windows\n", len(subjects), data.Len())

	// Hold out one representative wearer per Table III cohort: they never
	// contribute to the shared base and arrive later as tenants.
	heldOut, cohortOf := pickTenants(subjects)
	fmt.Printf("held-out tenants: %v\n\n", heldOut)

	train, pool, err := dataset.SplitBySubjects(data, heldOut)
	if err != nil {
		log.Fatal(err)
	}
	// One deployment normalizer, fit on the base training population and
	// applied to every wearer's windows — exactly what a fielded device
	// does; tenants do not get to refit it.
	norm, err := boosthd.FitNormalizer(train.X, boosthd.ZScore)
	if err != nil {
		log.Fatal(err)
	}
	for _, rows := range [][][]float64{train.X, pool.X} {
		if _, err := norm.Apply(rows); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("training shared base (BoostHD 8000-dim, 10 learners)...")
	m, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(8000, 10, data.NumClasses))
	if err != nil {
		log.Fatal(err)
	}

	// The production stack: packed-binary serving engine, micro-batching
	// server, tenant registry with a write-through delta store, and a
	// per-tenant trainer — all behind the HTTP handler.
	eng, err := boosthd.NewBinaryEngine(m)
	if err != nil {
		log.Fatal(err)
	}
	s, err := boosthd.NewServer(eng, boosthd.ServeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	deltaDir, err := os.MkdirTemp("", "boosthd-tenants-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(deltaDir)
	reg, err := boosthd.NewTenantRegistry(s, boosthd.TenantRegistryConfig{
		Store: boosthd.NewFileDeltaStore(deltaDir),
	})
	if err != nil {
		log.Fatal(err)
	}
	tt, err := boosthd.NewTenantTrainer(reg, boosthd.TenantTrainerConfig{MinRetrain: 16})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(boosthd.NewConfiguredServeHandler(s, boosthd.ServeHandlerConfig{
		Tenants:       reg,
		TenantTrainer: tt,
	}))
	defer srv.Close()

	baseHash := tenantStats(srv.URL).BaseHash
	fmt.Printf("serving at %s, base %s\n\n", srv.URL, baseHash[:16])

	fmt.Printf("%-8s %-14s %7s %8s %8s %8s  %s\n",
		"tenant", "cohort", "windows", "base", "adapted", "delta", "retrain")
	for _, id := range heldOut {
		tenant := fmt.Sprintf("subj-%02d", id)
		adaptX, adaptY, evalX, evalY := subjectSplit(pool, id)

		// Unpersonalized baseline: the shared model, no tenant header.
		baseAcc := accuracy(predictBatch(srv.URL+"/predict_batch", evalX), evalY)

		// Personalize: stream labeled adaptation windows into the tenant's
		// private buffer, then refit the tenant's copy-on-write delta.
		postJSON(srv.URL+"/t/"+tenant+"/observe",
			map[string]any{"rows": adaptX, "labels": adaptY}, nil)
		var report struct {
			Swapped bool    `json:"swapped"`
			Reason  string  `json:"reason"`
			Mode    string  `json:"mode"`
			Samples int     `json:"samples"`
			TookMS  float64 `json:"took_ms"`
		}
		postJSON(srv.URL+"/t/"+tenant+"/retrain", map[string]any{}, &report)
		note := fmt.Sprintf("%s, %d samples, %.0f ms", report.Mode, report.Samples, report.TookMS)
		if !report.Swapped {
			note = "skipped: " + report.Reason
		}

		tenantAcc := accuracy(predictBatch(srv.URL+"/t/"+tenant+"/predict_batch", evalX), evalY)
		fmt.Printf("%-8s %-14s %7d %7.2f%% %7.2f%% %+7.2f%%  %s\n",
			tenant, cohortOf[id], len(evalY), baseAcc*100, tenantAcc*100,
			(tenantAcc-baseAcc)*100, note)
	}

	st := tenantStats(srv.URL)
	fmt.Printf("\nisolation: base %s unchanged after %d personalizations (%v)\n",
		st.BaseHash[:16], st.Residents, st.BaseHash == baseHash)
	fmt.Printf("footprint: %d resident tenant views in %d bytes of delta state\n",
		st.Residents, st.ResidentBytes)
}

// pickTenants holds out one subject per Table III cohort (first match not
// already held out) and remembers which cohort nominated each.
func pickTenants(subjects []synth.Subject) (ids []int, cohortOf map[int]string) {
	cohortOf = map[int]string{}
	for _, g := range synth.TableIIIGroups() {
		for _, id := range synth.SelectSubjects(subjects, g) {
			if _, taken := cohortOf[id]; !taken {
				cohortOf[id] = g.Name
				ids = append(ids, id)
				break
			}
		}
	}
	return ids, cohortOf
}

// subjectSplit interleaves one subject's windows into adaptation (even
// positions, the labeled stream the tenant observes) and evaluation (odd
// positions, never shown to the trainer).
func subjectSplit(pool *dataset.Dataset, subject int) (adaptX [][]float64, adaptY []int, evalX [][]float64, evalY []int) {
	n := 0
	for i, s := range pool.Subjects {
		if s != subject {
			continue
		}
		if n%2 == 0 {
			adaptX = append(adaptX, pool.X[i])
			adaptY = append(adaptY, pool.Y[i])
		} else {
			evalX = append(evalX, pool.X[i])
			evalY = append(evalY, pool.Y[i])
		}
		n++
	}
	return adaptX, adaptY, evalX, evalY
}

func predictBatch(url string, rows [][]float64) []int {
	var resp struct {
		Labels []int `json:"labels"`
	}
	postJSON(url, map[string]any{"rows": rows}, &resp)
	return resp.Labels
}

func tenantStats(base string) boosthd.TenantStats {
	resp, err := http.Get(base + "/tenants")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st boosthd.TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

func postJSON(url string, body any, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) || len(truth) == 0 {
		log.Fatalf("accuracy: %d predictions vs %d labels", len(pred), len(truth))
	}
	hits := 0
	for i, p := range pred {
		if p == truth[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}
