// Quickstart: train a BoostHD ensemble on a small synthetic problem and
// compare it with plain OnlineHD at the same total dimension.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"boosthd"
)

func main() {
	// A noisy 3-class problem: class c lives around the c-th axis.
	rng := rand.New(rand.NewSource(42))
	const n, features, classes = 600, 12, 3
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % classes
		y[i] = c
		X[i] = make([]float64, features)
		for j := range X[i] {
			X[i][j] = 0.6 * rng.NormFloat64()
		}
		X[i][c] += 1.6
		X[i][classes+c] += 0.8
	}
	trainX, trainY := X[:450], y[:450]
	testX, testY := X[450:], y[450:]

	// BoostHD: 10 weak learners sharing a 4000-dimensional hyperspace.
	cfg := boosthd.DefaultConfig(4000, 10, classes)
	model, err := boosthd.Train(trainX, trainY, cfg)
	if err != nil {
		log.Fatal(err)
	}
	boostAcc, err := model.Evaluate(testX, testY)
	if err != nil {
		log.Fatal(err)
	}

	// OnlineHD: one monolithic learner over the same total budget.
	ocfg := boosthd.OnlineHDDefaultConfig(4000, classes)
	online, err := boosthd.TrainOnlineHD(trainX, trainY, nil, ocfg)
	if err != nil {
		log.Fatal(err)
	}
	onlineAcc, err := online.Evaluate(testX, testY)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BoostHD  (D=4000, NL=10): %.2f%%\n", boostAcc*100)
	fmt.Printf("OnlineHD (D=4000, NL=1):  %.2f%%\n", onlineAcc*100)
	fmt.Println()
	fmt.Println("Per-learner importance weights (alpha):")
	for i, a := range model.Alphas {
		seg := model.Segments()[i]
		fmt.Printf("  learner %2d  dims [%5d,%5d)  alpha=%.3f\n", i, seg[0], seg[1], a)
	}
}
