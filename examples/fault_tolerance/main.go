// Fault tolerance as a live serving guarantee: the paper's Figure 8
// protocol (random bit flips in stored class hypervectors) run against
// the runtime reliability subsystem instead of an offline sweep. The
// demo trains BoostHD on a wearable-stress workload, serves it, signs
// it with a reliability monitor, then walks the full self-healing
// cycle:
//
//	inject -> scrub detects -> quarantine (alpha-masked swap) -> repair
//
// and prints the served accuracy at every stage — corrupted, degraded
// (quarantined, riding the ensemble redundancy), and repaired.
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"boosthd"
)

func main() {
	cfg := boosthd.SynthConfig{
		Name:            "faults-demo",
		NumSubjects:     8,
		SamplesPerState: 1024,
		SmoothWindow:    30,
		WindowSize:      128,
		WindowStep:      64,
		Separability:    0.85,
		SensorNoise:     0.3,
		LabelNoise:      0.02,
		Seed:            11,
	}
	data, subjects, err := boosthd.BuildSynth(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test, _, err := boosthd.SubjectSplit(data, subjects, 0.3, 3)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := boosthd.FitNormalizer(train.X, boosthd.ZScore)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(train.X); err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(test.X); err != nil {
		log.Fatal(err)
	}

	model, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(8000, 10, data.NumClasses))
	if err != nil {
		log.Fatal(err)
	}

	// Save the verified checkpoint BEFORE anything can corrupt the
	// model — it is the repair source the monitor restores from.
	dir, err := os.MkdirTemp("", "boosthd-fault-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "verified.bhde")
	f, err := os.Create(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// Serve the model and attach the reliability monitor: signatures
	// over every learner's memory plus a held-out canary that scores
	// each learner solo.
	srv, err := boosthd.NewServer(boosthd.NewEngine(model), boosthd.ServeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	mon, err := boosthd.NewReliabilityMonitor(srv, boosthd.ReliabilityConfig{CheckpointPath: ckpt})
	if err != nil {
		log.Fatal(err)
	}
	canaryN := len(test.X) / 5
	if err := mon.SetCanary(test.X[:canaryN], test.Y[:canaryN]); err != nil {
		log.Fatal(err)
	}
	probesX, probesY := test.X[canaryN:], test.Y[canaryN:]

	accuracy := func() float64 {
		preds, err := srv.PredictBatch(probesX)
		if err != nil {
			log.Fatal(err)
		}
		right := 0
		for i, p := range preds {
			if p == probesY[i] {
				right++
			}
		}
		return float64(right) / float64(len(preds)) * 100
	}
	fmt.Printf("serving clean model:            accuracy %.2f%% (model generation %d)\n",
		accuracy(), srv.Stats().ModelVersion)

	// Corrupt three learners' class memories with heavy bit flips —
	// pb=1e-3 over float32 storage flips exponent bits often enough to
	// blow individual learners up completely.
	rng := rand.New(rand.NewSource(99))
	inj, err := boosthd.NewFaultInjector(1e-3, rng)
	if err != nil {
		log.Fatal(err)
	}
	flips := 0
	for _, learner := range []int{1, 4, 7} {
		flips += model.InjectLearnerFaults(learner, inj)
	}
	fmt.Printf("injected %d bit flips into learners 1, 4, 7: accuracy %.2f%% (silent corruption)\n",
		flips, accuracy())

	// Scrub: the integrity signatures flag exactly the corrupted
	// learners; quarantine masks their votes through an atomic engine
	// swap, and the remaining learners keep serving.
	srep, err := mon.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub detected + quarantined %v: accuracy %.2f%% (degraded, generation %d)\n",
		srep.Quarantined, accuracy(), srv.Stats().ModelVersion)
	st := mon.Status()
	fmt.Printf("healthz would report: degraded=%v, %d/%d learners quarantined\n",
		st.Degraded, len(st.Quarantined), st.Learners)

	// Repair: class vectors restored from the verified checkpoint,
	// re-signed, canary-verified, un-quarantined.
	rrep, err := mon.Repair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired %v from %s: accuracy %.2f%% (generation %d)\n",
		rrep.Repaired, rrep.Source, accuracy(), srv.Stats().ModelVersion)
	st = mon.Status()
	fmt.Printf("final status: degraded=%v, detections=%d, repairs=%d — served throughout, zero downtime\n",
		st.Degraded, st.Detections, st.Repairs)
}
