// Fault tolerance under memory bit flips (the paper's Figure 8 protocol):
// train BoostHD and OnlineHD on a wearable-stress workload, then flip
// stored class-hypervector bits with increasing per-bit probability and
// watch the vote redundancy keep BoostHD's accuracy flat while the
// monolithic model degrades.
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"boosthd"
)

func main() {
	cfg := boosthd.SynthConfig{
		Name:            "faults-demo",
		NumSubjects:     8,
		SamplesPerState: 1024,
		SmoothWindow:    30,
		WindowSize:      128,
		WindowStep:      64,
		Separability:    0.85,
		SensorNoise:     0.3,
		LabelNoise:      0.02,
		Seed:            11,
	}
	data, subjects, err := boosthd.BuildSynth(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test, _, err := boosthd.SubjectSplit(data, subjects, 0.3, 3)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := boosthd.FitNormalizer(train.X, boosthd.ZScore)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(train.X); err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(test.X); err != nil {
		log.Fatal(err)
	}

	boost, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(8000, 10, data.NumClasses))
	if err != nil {
		log.Fatal(err)
	}
	online, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(8000, 1, data.NumClasses))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	const trials = 15
	fmt.Println("p_b        BoostHD     OnlineHD   (mean accuracy % over trials)")
	for _, pb := range []float64{0, 1e-6, 1e-5, 1e-4, 1e-3} {
		var boostSum, onlineSum float64
		for t := 0; t < trials; t++ {
			inj, err := boosthd.NewFaultInjector(pb, rng)
			if err != nil {
				log.Fatal(err)
			}
			bc := boost.Clone()
			bc.InjectClassFaults(inj)
			bAcc, err := bc.Evaluate(test.X, test.Y)
			if err != nil {
				log.Fatal(err)
			}
			oc := online.Clone()
			oc.InjectClassFaults(inj)
			oAcc, err := oc.Evaluate(test.X, test.Y)
			if err != nil {
				log.Fatal(err)
			}
			boostSum += bAcc
			onlineSum += oAcc
		}
		fmt.Printf("%-9.0e  %8.2f    %8.2f\n", pb,
			boostSum/trials*100, onlineSum/trials*100)
	}
}
