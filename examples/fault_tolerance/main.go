// Fault tolerance as a live serving guarantee: the paper's Figure 8
// protocol (random bit flips in stored model memory) run against the
// runtime reliability subsystem instead of an offline sweep. The demo
// trains BoostHD on a wearable-stress workload, serves the quantized
// packed-binary model, signs it with a reliability monitor, then walks
// the full two-tier self-healing cycle:
//
//	inject word faults -> scrub attributes them to dimension segments
//	-> dimension quarantine (only the corrupted words leave the vote)
//	-> surgical repair (re-threshold) -> heavy faults -> full learner
//	quarantine -> checkpoint restore
//
// printing the served accuracy and each learner's healthy-dimension
// fraction at every stage — the monitor's view of how much of every
// learner is still voting.
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"boosthd"
)

func main() {
	cfg := boosthd.SynthConfig{
		Name:            "faults-demo",
		NumSubjects:     8,
		SamplesPerState: 1024,
		SmoothWindow:    30,
		WindowSize:      128,
		WindowStep:      64,
		Separability:    0.85,
		SensorNoise:     0.3,
		LabelNoise:      0.02,
		Seed:            11,
	}
	data, subjects, err := boosthd.BuildSynth(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test, _, err := boosthd.SubjectSplit(data, subjects, 0.3, 3)
	if err != nil {
		log.Fatal(err)
	}
	norm, err := boosthd.FitNormalizer(train.X, boosthd.ZScore)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(train.X); err != nil {
		log.Fatal(err)
	}
	if _, err := norm.Apply(test.X); err != nil {
		log.Fatal(err)
	}

	model, err := boosthd.Train(train.X, train.Y, boosthd.DefaultConfig(8000, 10, data.NumClasses))
	if err != nil {
		log.Fatal(err)
	}

	// Save the verified checkpoint BEFORE anything can corrupt the
	// model — it is the repair source the monitor restores from.
	dir, err := os.MkdirTemp("", "boosthd-fault-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "verified.bhde")
	f, err := os.Create(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// Serve the quantized packed-binary model — the wearable deployment
	// representation whose word-granular memory the fault model hits —
	// and attach a reliability monitor with one-word (64-dimension)
	// quarantine segments.
	eng, err := boosthd.NewBinaryEngine(model)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := boosthd.NewServer(eng, boosthd.ServeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	mon, err := boosthd.NewReliabilityMonitor(srv, boosthd.ReliabilityConfig{
		CheckpointPath: ckpt,
		SegmentWords:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	canaryN := len(test.X) / 5
	if err := mon.SetCanary(test.X[:canaryN], test.Y[:canaryN]); err != nil {
		log.Fatal(err)
	}
	probesX, probesY := test.X[canaryN:], test.Y[canaryN:]

	accuracy := func() float64 {
		preds, err := srv.PredictBatch(probesX)
		if err != nil {
			log.Fatal(err)
		}
		right := 0
		for i, p := range preds {
			if p == probesY[i] {
				right++
			}
		}
		return float64(right) / float64(len(preds)) * 100
	}
	// healthRow renders each learner's healthy-dimension fraction — the
	// monitor's ledger view of how much of every learner still votes.
	healthRow := func() string {
		st := mon.Status()
		cells := make([]string, len(st.Ledger))
		for i, h := range st.Ledger {
			cells[i] = fmt.Sprintf("%d:%.2f", i, h.HealthyFraction)
		}
		return strings.Join(cells, " ")
	}
	fmt.Printf("serving clean quantized model:  accuracy %.2f%% (model generation %d)\n",
		accuracy(), srv.Stats().ModelVersion)
	fmt.Printf("  healthy-dimension fraction per learner: %s\n", healthRow())

	// Stage 1: sparse word faults in the live quantized planes — the
	// silent corruption word-granular hardware actually produces.
	rng := rand.New(rand.NewSource(99))
	inj, err := boosthd.NewFaultInjector(2e-4, rng)
	if err != nil {
		log.Fatal(err)
	}
	flips := 0
	for flips == 0 {
		flips = srv.Engine().Binary().InjectWordFaults(inj)
	}
	fmt.Printf("\ninjected %d word-fault bit flips: accuracy %.2f%% (silent corruption)\n",
		flips, accuracy())

	// Scrub: segment signatures attribute each flipped word to its
	// dimension segment; only those words leave the vote.
	srep, err := mon.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	st := mon.Status()
	fmt.Printf("scrub attributed the damage: %d learners dimension-masked (%d words), %d fully quarantined: accuracy %.2f%% (generation %d)\n",
		len(srep.DimMasked), srep.MaskedWords, len(srep.Quarantined), accuracy(), srv.Stats().ModelVersion)
	fmt.Printf("  healthy-dimension fraction per learner: %s\n", healthRow())
	fmt.Printf("  healthz would report: degraded=%v\n", st.Degraded)

	// Surgical repair: only the corrupted learners re-threshold from
	// the intact float memory.
	rrep, err := mon.Repair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired %v via %s: accuracy %.2f%% (generation %d)\n",
		rrep.Repaired, rrep.Source, accuracy(), srv.Stats().ModelVersion)
	fmt.Printf("  healthy-dimension fraction per learner: %s\n", healthRow())

	// Stage 2: heavy float corruption of three learners — too broad for
	// dimension masking, so the criticality threshold escalates to a
	// full alpha-mask quarantine, and repair restores from the
	// verified checkpoint.
	injF, err := boosthd.NewFaultInjector(1e-3, rng)
	if err != nil {
		log.Fatal(err)
	}
	flips = 0
	for _, learner := range []int{1, 4, 7} {
		flips += model.InjectLearnerFaults(learner, injF)
	}
	fmt.Printf("\ninjected %d bit flips into learners 1, 4, 7's float memory: accuracy %.2f%% (silent corruption)\n",
		flips, accuracy())
	srep, err = mon.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub quarantined %v, dimension-masked %v: accuracy %.2f%% (degraded, generation %d)\n",
		srep.Quarantined, srep.DimMasked, accuracy(), srv.Stats().ModelVersion)
	fmt.Printf("  healthy-dimension fraction per learner: %s\n", healthRow())

	rrep, err = mon.Repair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired %v from %s: accuracy %.2f%% (generation %d)\n",
		rrep.Repaired, rrep.Source, accuracy(), srv.Stats().ModelVersion)
	fmt.Printf("  healthy-dimension fraction per learner: %s\n", healthRow())
	st = mon.Status()
	fmt.Printf("final status: degraded=%v, detections=%d, repairs=%d — served throughout, zero downtime\n",
		st.Degraded, st.Detections, st.Repairs)
}
