// Command boosthd trains and evaluates models on the synthetic healthcare
// datasets from the command line.
//
// Usage:
//
//	boosthd -dataset wesad|nurse|stresspredict
//	        -model boosthd|onlinehd|adaboost|rf|xgboost|svm|dnn
//	        [-backend float|binary] [-projection stored|seeded-stored|seeded]
//	        [-dim 10000] [-nl 10] [-epochs 20] [-runs 3] [-seed 7]
//	        [-subjects N] [-samples N]
//	        [-save model.bhde] [-save-binary model.bhdb]
//
// -backend selects the BoostHD serving engine: float cosine scoring, or
// the packed-binary backend that quantizes the trained model to bit
// vectors and scores by Hamming similarity.
//
// -projection selects the encoder's projection representation: "stored"
// is the legacy materialized Gaussian matrix, "seeded-stored" a
// materialized counter-based matrix, "seeded" (alias "remat") the
// rematerialized encoder that regenerates projection rows in-kernel —
// O(1) encoder state, seed-sized checkpoints, identical predictions to
// seeded-stored. Seeded checkpoints use a newer wire framing that older
// builds reject loudly.
//
// -save writes the last run's trained BoostHD ensemble as a float
// checkpoint; -save-binary writes its quantized binary snapshot. Both
// feed cmd/boosthd-serve.
//
// Each run draws a fresh subject-wise split, normalizes features with
// training statistics, trains the requested model, and reports accuracy
// with training and per-sample inference times.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"boosthd/internal/boosthd"
	"boosthd/internal/dataset"
	"boosthd/internal/encoding"
	"boosthd/internal/ensemble"
	"boosthd/internal/forest"
	"boosthd/internal/gbdt"
	"boosthd/internal/infer"
	"boosthd/internal/nn"
	"boosthd/internal/onlinehd"
	"boosthd/internal/signal"
	"boosthd/internal/stats"
	"boosthd/internal/svm"
	"boosthd/internal/synth"
)

func main() {
	datasetName := flag.String("dataset", "wesad", "wesad, nurse, or stresspredict")
	modelName := flag.String("model", "boosthd", "boosthd, onlinehd, adaboost, rf, xgboost, svm, dnn")
	backend := flag.String("backend", "float", "BoostHD serving backend: float or binary")
	projection := flag.String("projection", "stored", "BoostHD encoder projection: stored, seeded-stored, or seeded (remat)")
	dim := flag.Int("dim", 10000, "HDC total dimension Dtotal")
	nl := flag.Int("nl", 10, "BoostHD weak learners NL")
	epochs := flag.Int("epochs", 20, "HDC training epochs")
	runs := flag.Int("runs", 3, "number of subject-split runs")
	seed := flag.Int64("seed", 7, "base random seed")
	subjects := flag.Int("subjects", 0, "override subject count (0 = dataset default)")
	samples := flag.Int("samples", 0, "override raw samples per state (0 = dataset default)")
	savePath := flag.String("save", "", "write the trained BoostHD ensemble checkpoint here (boosthd only)")
	saveBinaryPath := flag.String("save-binary", "", "write the quantized binary snapshot here (boosthd only)")
	flag.Parse()

	switch strings.ToLower(*backend) {
	case "", "float", "binary", "packed-binary":
	default:
		fail(fmt.Errorf("unknown backend %q (want float or binary)", *backend))
	}
	proj, err := encoding.ParseProjection(strings.ToLower(*projection))
	if err != nil {
		fail(err)
	}
	if proj != encoding.ProjStored && !strings.EqualFold(*modelName, "boosthd") {
		fail(fmt.Errorf("-projection %s applies only to -model boosthd", *projection))
	}
	if !strings.EqualFold(*backend, "float") && *backend != "" && !strings.EqualFold(*modelName, "boosthd") {
		fail(fmt.Errorf("-backend %s applies only to -model boosthd", *backend))
	}
	if (*savePath != "" || *saveBinaryPath != "") && !strings.EqualFold(*modelName, "boosthd") {
		fail(fmt.Errorf("-save/-save-binary apply only to -model boosthd"))
	}
	if *runs < 1 {
		fail(fmt.Errorf("-runs must be >= 1, got %d", *runs))
	}
	cfg, err := datasetConfig(*datasetName)
	if err != nil {
		fail(err)
	}
	if *subjects > 0 {
		cfg.NumSubjects = *subjects
	}
	if *samples > 0 {
		cfg.SamplesPerState = *samples
	}
	data, roster, err := synth.Build(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset %s: %d windows x %d features, %d subjects, %d classes\n",
		cfg.Name, data.Len(), data.NumFeatures(), len(roster), data.NumClasses)

	var accs, trainTimes, inferTimes []float64
	var lastTrained *boosthd.Model
	for r := 0; r < *runs; r++ {
		splitSeed := *seed + int64(r)
		train, test, _, err := synth.SubjectSplit(data, roster, 0.3, splitSeed)
		if err != nil {
			fail(err)
		}
		for i, row := range train.X {
			train.X[i] = append([]float64(nil), row...)
		}
		for i, row := range test.X {
			test.X[i] = append([]float64(nil), row...)
		}
		norm, err := signal.FitNormalizer(train.X, signal.ZScore)
		if err != nil {
			fail(err)
		}
		if _, err := norm.Apply(train.X); err != nil {
			fail(err)
		}
		if _, err := norm.Apply(test.X); err != nil {
			fail(err)
		}

		start := time.Now()
		predict, trained, err := trainModel(*modelName, *backend, proj, train, *dim, *nl, *epochs, splitSeed)
		if err != nil {
			fail(err)
		}
		trainDur := time.Since(start)
		lastTrained = trained

		start = time.Now()
		pred, err := predict(test.X)
		if err != nil {
			fail(err)
		}
		inferPer := time.Since(start).Seconds() / float64(test.Len())

		acc, err := stats.Accuracy(pred, test.Y)
		if err != nil {
			fail(err)
		}
		accs = append(accs, acc*100)
		trainTimes = append(trainTimes, trainDur.Seconds())
		inferTimes = append(inferTimes, inferPer*1e6)
		fmt.Printf("run %d: accuracy %.2f%%  train %.2fs  inference %.1f us/sample\n",
			r, acc*100, trainDur.Seconds(), inferPer*1e6)
	}
	fmt.Printf("\n%s on %s over %d runs: accuracy %s  train %.2fs  inference %.1f us/sample\n",
		*modelName, cfg.Name, *runs, stats.Summarize(accs).String(),
		stats.Mean(trainTimes), stats.Mean(inferTimes))

	if *savePath != "" {
		if err := writeCheckpoint(*savePath, lastTrained.Save); err != nil {
			fail(err)
		}
		fmt.Printf("wrote ensemble checkpoint %s\n", *savePath)
	}
	if *saveBinaryPath != "" {
		bm, err := infer.Quantize(lastTrained)
		if err != nil {
			fail(err)
		}
		if err := writeCheckpoint(*saveBinaryPath, bm.Save); err != nil {
			fail(err)
		}
		fmt.Printf("wrote binary snapshot %s\n", *saveBinaryPath)
	}
}

// writeCheckpoint saves through an (io.Writer) error serializer into path.
func writeCheckpoint(path string, save func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func datasetConfig(name string) (synth.Config, error) {
	switch strings.ToLower(name) {
	case "wesad":
		return synth.WESADConfig(), nil
	case "nurse", "nursestress":
		return synth.NurseStressConfig(), nil
	case "stresspredict", "stress-predict":
		return synth.StressPredictConfig(), nil
	default:
		return synth.Config{}, fmt.Errorf("unknown dataset %q", name)
	}
}

type predictor func([][]float64) ([]int, error)

func trainModel(name, backend string, proj encoding.Projection, train *dataset.Dataset, dim, nl, epochs int, seed int64) (predictor, *boosthd.Model, error) {
	classes := train.NumClasses
	switch strings.ToLower(name) {
	case "boosthd":
		cfg := boosthd.DefaultConfig(dim, nl, classes)
		cfg.Epochs = epochs
		cfg.Seed = seed
		cfg.Projection = proj
		m, err := boosthd.Train(train.X, train.Y, cfg)
		if err != nil {
			return nil, nil, err
		}
		switch strings.ToLower(backend) {
		case "", "float":
			return infer.NewEngine(m).PredictBatch, m, nil
		case "binary", "packed-binary":
			eng, err := infer.NewBinaryEngine(m)
			if err != nil {
				return nil, nil, err
			}
			return eng.PredictBatch, m, nil
		default:
			return nil, nil, fmt.Errorf("unknown backend %q", backend)
		}
	case "onlinehd":
		cfg := onlinehd.DefaultConfig(dim, classes)
		cfg.Epochs = epochs
		cfg.Seed = seed
		m, err := onlinehd.Train(train.X, train.Y, nil, cfg)
		if err != nil {
			return nil, nil, err
		}
		return m.PredictBatch, nil, nil
	case "adaboost":
		cfg := ensemble.DefaultAdaBoostConfig()
		cfg.Seed = seed
		m, err := ensemble.FitAdaBoost(train.X, train.Y, classes, cfg)
		if err != nil {
			return nil, nil, err
		}
		return func(X [][]float64) ([]int, error) { return m.PredictBatch(X), nil }, nil, nil
	case "rf":
		cfg := forest.DefaultConfig()
		cfg.Seed = seed
		m, err := forest.Fit(train.X, train.Y, classes, cfg)
		if err != nil {
			return nil, nil, err
		}
		return func(X [][]float64) ([]int, error) { return m.PredictBatch(X), nil }, nil, nil
	case "xgboost":
		m, err := gbdt.Fit(train.X, train.Y, classes, gbdt.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		return func(X [][]float64) ([]int, error) { return m.PredictBatch(X), nil }, nil, nil
	case "svm":
		cfg := svm.DefaultConfig()
		cfg.Seed = seed
		m, err := svm.Fit(train.X, train.Y, classes, cfg)
		if err != nil {
			return nil, nil, err
		}
		return func(X [][]float64) ([]int, error) { return m.PredictBatch(X), nil }, nil, nil
	case "dnn":
		cfg := nn.DefaultConfig(classes)
		cfg.Hidden = []int{256, 128, 64} // tractable CPU width; -model dnn is not the paper-width timing path
		cfg.Epochs = 20
		cfg.Seed = seed
		m, err := nn.New(train.NumFeatures(), cfg)
		if err != nil {
			return nil, nil, err
		}
		if err := m.Fit(train.X, train.Y); err != nil {
			return nil, nil, err
		}
		return m.PredictBatch, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown model %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "boosthd:", err)
	os.Exit(1)
}
