// Command benchguard runs the tier-1 micro-benchmarks and fails when any
// of them regresses by more than the allowed tolerance against the
// committed baseline (BENCH_baseline.json at the repo root).
//
// Usage:
//
//	benchguard [-update] [-baseline path] [-tolerance frac] [-count N]
//
// With -update the baseline file is rewritten from the current run
// instead of being checked; commit the result alongside the change that
// moved the numbers.
//
// Because absolute ns/op depends on the host, the baseline also records a
// calibration measurement: a fixed XOR/popcount spin over a 64 KiB buffer.
// At check time the same spin is re-measured and every baseline figure is
// scaled by the ratio of the two, so the guard keeps working when the
// baseline machine and the CI runner differ in raw speed. The tolerance
// (default 25%, override with -tolerance or BENCHGUARD_TOLERANCE) absorbs
// what first-order scaling cannot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/bits"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// suite is one `go test -bench` invocation to guard.
type suite struct {
	pkg       string  // package path relative to the repo root
	bench     string  // -bench regex
	benchtime string  // -benchtime value
	count     int     // -count value; best (minimum) iteration wins
	tolScale  float64 // multiplier on the base tolerance (1 = micro-bench)
}

// keyPkg is the package part of a baseline key: the path without the
// leading "./", with the root package spelled out.
func (s suite) keyPkg() string {
	if s.pkg == "." {
		return "boosthd"
	}
	return strings.TrimPrefix(s.pkg, "./")
}

// suites lists the tier-1 benchmarks. Root-level table benchmarks run a
// full quick-config experiment per iteration, so only the serving-engine
// ablation is guarded there, at a looser tolerance; the per-kernel
// figures come from the infer and encoding micro-benchmarks.
var suites = []suite{
	{
		pkg:       "./internal/encoding",
		bench:     "^(BenchmarkEncodeNonlinear|BenchmarkEncodeRFF|BenchmarkEncodeLinear|BenchmarkEncodeBatchParallel|BenchmarkEncodeBatchRemat|BenchmarkEncodeBitsStored|BenchmarkEncodeBitsRemat|BenchmarkIDLevelEncode)$",
		benchtime: "200ms",
		count:     5,
		tolScale:  1,
	},
	{
		pkg:       "./internal/infer",
		bench:     "^(BenchmarkPredictBatchFloat|BenchmarkPredictBatchBinary|BenchmarkScoreEncodedFloat|BenchmarkScoreEncodedBinary)$",
		benchtime: "200ms",
		count:     5,
		tolScale:  1,
	},
	{
		pkg:       "./internal/serve",
		bench:     "^(BenchmarkTenantResolve|BenchmarkTenantResolveParallel)$",
		benchtime: "200ms",
		count:     5,
		tolScale:  1,
	},
	{
		pkg:       "./internal/obs",
		bench:     "^(BenchmarkHistogramObserve|BenchmarkSpanStamp)$",
		benchtime: "200ms",
		count:     5,
		tolScale:  1,
	},
	{
		pkg:       ".",
		bench:     "^BenchmarkInferBackends$",
		benchtime: "1x",
		count:     2,
		tolScale:  2,
	},
}

// baseline is the on-disk schema of BENCH_baseline.json.
type baseline struct {
	Note          string             `json:"note"`
	Go            string             `json:"go"`
	CalibrationNs float64            `json:"calibration_ns"`
	Benchmarks    map[string]float64 `json:"benchmarks"` // "<pkg>.<Benchmark>" -> ns/op
}

// calibrate measures the host's raw integer throughput with a fixed
// XOR/popcount spin — the same word-parallel work the scoring kernels do —
// and returns the best wall time over 25 repetitions (~50 ms total, wide
// enough to dodge a transient busy slice on a shared runner).
func calibrate() float64 {
	buf := make([]uint64, 8192) // 64 KiB
	for i := range buf {
		buf[i] = 0x9E3779B97F4A7C15 * uint64(i+1)
	}
	best := math.MaxFloat64
	for rep := 0; rep < 25; rep++ {
		start := time.Now()
		var sink int
		for pass := 0; pass < 200; pass++ {
			acc := uint64(pass)
			for _, w := range buf {
				sink += bits.OnesCount64(w ^ acc)
				acc = acc<<1 | acc>>63
			}
		}
		if sink == -1 {
			panic("unreachable")
		}
		if ns := float64(time.Since(start).Nanoseconds()); ns < best {
			best = ns
		}
	}
	return best
}

// benchLine matches `BenchmarkName-8   123   4567 ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// runSuite executes one guarded `go test -bench` invocation and returns
// the best ns/op seen for each benchmark (keyed "<pkg>.<Benchmark>").
func runSuite(s suite) (map[string]float64, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", s.bench,
		"-benchtime", s.benchtime,
		"-count", strconv.Itoa(s.count),
		s.pkg,
	}
	fmt.Printf("benchguard: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %s in %s: %w", s.bench, s.pkg, err)
	}
	got := map[string]float64{}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		key := s.keyPkg() + "." + m[1]
		if prev, ok := got[key]; !ok || ns < prev {
			got[key] = ns
		}
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("no benchmarks matched %q in %s", s.bench, s.pkg)
	}
	return got, nil
}

func tolScaleFor(key string) float64 {
	best, scale := 0, 1.0
	for _, s := range suites {
		if p := s.keyPkg() + "."; strings.HasPrefix(key, p) && len(p) > best {
			best, scale = len(p), s.tolScale
		}
	}
	return scale
}

func main() {
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of checking")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to check or update")
	tolerance := flag.Float64("tolerance", 0, "allowed fractional regression (default 0.25, or BENCHGUARD_TOLERANCE)")
	flag.Parse()

	tol := *tolerance
	if tol == 0 {
		tol = 0.25
		if env := os.Getenv("BENCHGUARD_TOLERANCE"); env != "" {
			v, err := strconv.ParseFloat(env, 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "benchguard: bad BENCHGUARD_TOLERANCE %q\n", env)
				os.Exit(2)
			}
			tol = v
		}
	}

	cal := calibrate()
	current := map[string]float64{}
	for _, s := range suites {
		got, err := runSuite(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		for k, v := range got {
			current[k] = v
		}
	}
	// A second calibration after the suites dodges process-start
	// contention; the faster of the two is the host's real speed.
	if c := calibrate(); c < cal {
		cal = c
	}
	fmt.Printf("benchguard: calibration %.0f ns on %s\n", cal, runtime.Version())

	if *update {
		b := baseline{
			Note:          "tier-1 benchmark baseline; regenerate with `go run ./cmd/benchguard -update`",
			Go:            runtime.Version(),
			CalibrationNs: cal,
			Benchmarks:    current,
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchguard: wrote %d baselines to %s\n", len(current), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run with -update to create it)\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if base.CalibrationNs <= 0 || len(base.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s is empty or missing calibration; regenerate with -update\n", *baselinePath)
		os.Exit(2)
	}

	scale := cal / base.CalibrationNs
	fmt.Printf("benchguard: host speed scale %.2fx vs baseline machine, tolerance %.0f%%\n", scale, tol*100)

	keys := make([]string, 0, len(current))
	for k := range current {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	failed := 0
	for _, k := range keys {
		cur := current[k]
		want, ok := base.Benchmarks[k]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: not in baseline (run -update to add it)\n", k)
			failed++
			continue
		}
		allowed := want * scale * (1 + tol*tolScaleFor(k))
		ratio := cur / (want * scale)
		verdict := "ok"
		if cur > allowed {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("benchguard: %-4s %s: %.0f ns/op vs %.0f baseline (%.2fx)\n", verdict, k, cur, want*scale, ratio)
	}
	for k := range base.Benchmarks {
		if _, ok := current[k]; !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL baseline entry %s no longer runs (stale baseline? run -update)\n", k)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmark(s) regressed beyond the %.0f%% tolerance\n", failed, tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all %d benchmarks within tolerance\n", len(keys))
}
