// Command hdlint runs the repo's invariant analyzers (locksafety,
// hotalloc, versionbump, snapshotalias) over module packages and exits
// nonzero on any finding. It is stdlib-only: packages are parsed and
// typechecked with go/parser, go/types and the source importer, so the
// check runs anywhere a Go toolchain source tree exists — no generated
// export data, no third-party driver.
//
// Usage:
//
//	hdlint [-only analyzer,analyzer] [packages]
//
// Package patterns follow the go tool's relative forms ("./...",
// "./internal/infer", "internal/serve/..."); the default is "./...".
// Suppress an individual finding with
//
//	//hdlint:ignore <analyzer> <reason>
//
// on the offending line or the line above. The reason is mandatory;
// malformed directives are findings themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"boosthd/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hdlint [-only analyzers] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hdlint:", err)
			os.Exit(2)
		}
	}

	prog, pkgs, err := analysis.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdlint:", err)
		os.Exit(2)
	}

	findings := analysis.Run(prog, pkgs, analyzers)
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := relTo(prog.RootDir, rel); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hdlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func relTo(root, path string) (string, error) {
	if !strings.HasPrefix(path, root) {
		return path, nil
	}
	return strings.TrimPrefix(strings.TrimPrefix(path, root), string(os.PathSeparator)), nil
}
