// Command boosthd-serve runs the HTTP/JSON serving layer over a trained
// BoostHD model: concurrent /predict requests are coalesced by the
// adaptive micro-batcher into the engine's fused batch pipeline, /swap
// hot-loads a new checkpoint without dropping in-flight requests, and
// with -trainer the streaming continual-learning loop keeps the model
// fresh from labeled /observe traffic.
//
// Usage:
//
//	boosthd-serve [-addr :8080] [-checkpoint model.bhde] [-backend float|binary]
//	              [-projection stored|seeded-stored|seeded]
//	              [-max-batch 64] [-max-wait 200us] [-workers N]
//	              [-checkpoint-dir dir] [-body-limit bytes] [-max-rows N]
//	              [-auth-token secret]
//	              [-trainer] [-retrain-every 0] [-buffer 4096] [-retrain-mode full|alphas]
//	              [-tenants] [-tenant-dir dir] [-tenant-cache 1024] [-tenant-shards 16]
//	              [-scrub-every 0] [-canary 0] [-quarantine-threshold 0.15]
//	              [-segment-words 8] [-min-healthy 0.5] [-chaos]
//	              [-trace-sample 0] [-events-file path] [-debug-addr addr]
//	              [-read-timeout 30s] [-write-timeout 30s] [-idle-timeout 2m]
//	              [-shutdown-grace 15s]
//
// -checkpoint accepts a float ensemble checkpoint (written by
// Model.Save / cmd/boosthd -save) or, with -backend binary, a quantized
// binary snapshot (BinaryModel.Save) that cold-loads without
// re-quantization. Without -checkpoint the server trains a demo model on
// the synthetic WESAD workload so the endpoints can be exercised
// immediately; -projection selects that demo model's encoder projection
// (stored matrix, seeded-stored, or the rematerialized seeded encoder).
//
// Hardening: every request body is capped (-body-limit, 413 beyond),
// batch row counts are capped (-max-rows, 400 beyond), the listener
// runs with read/write/idle timeouts instead of a bare
// http.ListenAndServe, and SIGINT/SIGTERM trigger a graceful shutdown —
// the listener stops accepting, in-flight handlers finish, and the
// micro-batcher drains everything it already accepted. /swap only loads
// checkpoints from inside -checkpoint-dir (disabled when unset), and
// -auth-token requires a bearer token on every mutating endpoint
// (/swap, /observe, /retrain).
//
// Reliability: -scrub-every starts the internal/reliability monitor — a
// background scrubber that verifies segmented integrity signatures over
// the model memory (float checksums + packed-plane parity words, one
// parity+digest pair per -segment-words words), masks exactly the
// corrupted dimension words out of the serving votes (falling back to a
// whole-learner quarantine when the healthy fraction drops below
// -min-healthy or the masked segments' canary-measured criticality
// exceeds -quarantine-threshold), and repairs surgically (per-learner
// re-threshold, per-segment restore from the -checkpoint file, or a
// trainer hot-retrain). -canary N holds N rows out of the demo workload
// as the per-learner accuracy canary (demo model only). With -trainer,
// every streaming update is announced to the monitor with a fresh
// signature (SignedUpdates), so integrity scrubbing stays strict under
// live training. /healthz gains a model-identity and reliability block;
// /reliability serves the full health ledger with per-learner
// healthy-dimension fractions and masked-word counts. -chaos enables
// the POST /inject word-fault drill endpoint (binary backend only).
//
// Multi-tenant serving: -tenants multiplexes the process across tenants
// — one shared immutable base model plus a copy-on-write learner delta
// per tenant (an LRU of resident views over a per-tenant checkpoint
// store in -tenant-dir). Requests address a tenant with the X-Tenant
// header or the /t/{tenant}/{predict,predict_batch,observe,retrain}
// path form; tenant observes buffer privately and tenant retrains refit
// only that tenant's delta learners, never the shared base. A base
// retrain republishes to every tenant through the server's atomic swap.
// With -scrub-every the registry also re-verifies each resident delta's
// signature on the scrub cadence (the base is signed once by the
// reliability monitor).
//
// Observability: stage-level latency histograms (request, batch wait,
// batch size, encode, score), per-backend stage accounting, and the
// reliability/tenant event journal are always on and exported through
// /metrics, /trace, and /events. -trace-sample N additionally captures
// every Nth request's full stage trace (admission → queue → encode →
// score → aggregate) into the bounded /trace ring; -events-file mirrors
// the event journal to a JSONL file next to the reliability state.
// -debug-addr starts a SECOND listener serving net/http/pprof under
// /debug/pprof/ — it is never mounted on the serving mux and carries no
// auth, so bind it to localhost (or a firewalled port) only.
//
// Endpoints:
//
//	POST /predict        {"features":[...]}                      -> {"label":n}
//	POST /predict_batch  {"rows":[[...],...]}                    -> {"labels":[...]}
//	GET  /healthz                                                -> serving + trainer stats
//	GET  /metrics                                                -> Prometheus text metrics
//	POST /swap           {"checkpoint":"name","backend":"float"} -> swap report
//	POST /observe        {"features":[...],"label":n}            -> ingestion report
//	POST /retrain        {}                                      -> retrain report
//	GET  /reliability                                            -> health ledger + counters
//	GET  /tenants                                                -> tenant registry stats
//	GET  /trace                                                  -> sampled stage traces + stage accounting
//	GET  /events                                                 -> reliability/tenant event journal
//	*    /t/{tenant}/{predict|predict_batch|observe|retrain}     -> tenant-scoped ops
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	osignal "os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"boosthd/internal/boosthd"
	"boosthd/internal/encoding"
	"boosthd/internal/faults"
	"boosthd/internal/infer"
	"boosthd/internal/obs"
	"boosthd/internal/reliability"
	"boosthd/internal/serve"
	"boosthd/internal/signal"
	"boosthd/internal/synth"
	"boosthd/internal/trainer"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	checkpoint := flag.String("checkpoint", "", "model checkpoint to serve (empty = train a synthetic demo model)")
	backend := flag.String("backend", "float", "serving backend: float or binary")
	projection := flag.String("projection", "stored", "demo-model encoder projection: stored, seeded-stored, or seeded (remat)")
	maxBatch := flag.Int("max-batch", 0, "micro-batcher max coalesced rows (0 = default 64)")
	maxWait := flag.Duration("max-wait", 0, "micro-batcher straggler wait (0 = default 200us)")
	workers := flag.Int("workers", 0, "batch executor goroutines (0 = GOMAXPROCS)")
	checkpointDir := flag.String("checkpoint-dir", "", "allowlist root for /swap checkpoints (empty = /swap disabled)")
	authToken := flag.String("auth-token", "", "bearer token required on /swap, /observe, /retrain (empty = no auth)")
	bodyLimit := flag.Int64("body-limit", 0, "request body cap in bytes (0 = default 8 MiB, negative = unlimited)")
	maxRows := flag.Int("max-rows", 0, "batch request row cap (0 = default 4096, negative = unlimited)")
	useTrainer := flag.Bool("trainer", false, "enable the streaming continual-learning trainer (/observe, /retrain)")
	useTenants := flag.Bool("tenants", false, "enable multi-tenant serving (X-Tenant header and /t/{tenant}/... routes over copy-on-write per-tenant deltas)")
	tenantDir := flag.String("tenant-dir", "", "per-tenant delta checkpoint directory (empty = ephemeral temp dir)")
	tenantCache := flag.Int("tenant-cache", 0, "resident tenant view cache size (0 = default 1024)")
	tenantShards := flag.Int("tenant-shards", 0, "lock stripes for the tenant registry, rounded up to a power of two (0 = default 16)")
	retrainEvery := flag.Duration("retrain-every", 0, "background retrain period (0 = manual /retrain only)")
	bufferCap := flag.Int("buffer", 4096, "trainer sample buffer capacity")
	retrainMode := flag.String("retrain-mode", "full", "retrain scope: full (refit learners+alphas) or alphas (reweight only)")
	scrubEvery := flag.Duration("scrub-every", 0, "reliability scrub period (0 = monitor disabled)")
	canaryRows := flag.Int("canary", 0, "held-out canary rows for per-learner health checks (demo model only)")
	quarantineThreshold := flag.Float64("quarantine-threshold", 0.15, "canary accuracy drop that quarantines a learner")
	segmentWords := flag.Int("segment-words", 0, "signature/quarantine segment width in packed 64-bit words (0 = default 8; corruption is masked at this granularity)")
	minHealthy := flag.Float64("min-healthy", 0, "healthy-dimension fraction below which a learner is fully quarantined instead of dimension-masked (0 = default 0.5, >=1 = always whole-learner)")
	chaos := flag.Bool("chaos", false, "enable the POST /inject fault-injection drill endpoint (binary backend; gate with -auth-token on exposed ports)")
	traceSample := flag.Int("trace-sample", 0, "capture every Nth request's full stage trace into /trace (0 = no per-request traces; histograms and /events stay on)")
	eventsFile := flag.String("events-file", "", "mirror the /events reliability journal to this JSONL file (empty = in-memory ring only)")
	debugAddr := flag.String("debug-addr", "", "extra listener for net/http/pprof under /debug/pprof/ (empty = disabled; unauthenticated — bind to localhost only)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "HTTP server write timeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP server idle timeout")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "max wait for in-flight requests on SIGTERM")
	flag.Parse()

	// Trainer-only knobs without -trainer would silently do nothing —
	// the operator would believe the model is adapting while it serves
	// frozen. Refuse the misconfiguration outright.
	if !*useTrainer {
		trainerOnly := map[string]bool{"retrain-every": true, "buffer": true, "retrain-mode": true}
		flag.Visit(func(f *flag.Flag) {
			if trainerOnly[f.Name] {
				fail(fmt.Errorf("-%s requires -trainer", f.Name))
			}
		})
	}
	// Tenant-only knobs without -tenants would configure a subsystem that
	// never starts; refuse the misconfiguration outright.
	if !*useTenants {
		tenantOnly := map[string]bool{"tenant-dir": true, "tenant-cache": true, "tenant-shards": true}
		flag.Visit(func(f *flag.Flag) {
			if tenantOnly[f.Name] {
				fail(fmt.Errorf("-%s requires -tenants", f.Name))
			}
		})
	}
	if *scrubEvery <= 0 {
		scrubOnly := map[string]bool{"canary": true, "quarantine-threshold": true, "segment-words": true, "min-healthy": true}
		flag.Visit(func(f *flag.Flag) {
			if scrubOnly[f.Name] {
				fail(fmt.Errorf("-%s requires -scrub-every", f.Name))
			}
		})
	}
	if *scrubEvery > 0 && *quarantineThreshold <= 0 {
		// An exact-zero tolerance would quarantine on ordinary canary
		// noise, and the monitor's config treats 0 as "use the default"
		// — refuse the ambiguity instead of silently serving either
		// meaning.
		fail(fmt.Errorf("-quarantine-threshold must be positive (got %v)", *quarantineThreshold))
	}
	proj, err := encoding.ParseProjection(strings.ToLower(*projection))
	if err != nil {
		fail(err)
	}
	if proj != encoding.ProjStored && *checkpoint != "" {
		// A checkpoint already fixes its own projection mode; accepting the
		// flag here would suggest it re-encodes the served model.
		fail(fmt.Errorf("-projection applies only to the demo model (no -checkpoint); " +
			"checkpoints carry their projection mode"))
	}
	if *canaryRows > 0 && *checkpoint != "" {
		// The canary is held out of the demo workload; a checkpointed
		// model brings no data to hold out. Refuse rather than silently
		// run integrity-only scrubbing the operator believes is
		// canary-guarded.
		fail(fmt.Errorf("-canary requires the demo model (no -checkpoint); " +
			"checkpointed deployments run integrity-signature scrubbing"))
	}

	var (
		eng     *infer.Engine
		canaryX [][]float64
		canaryY []int
	)
	if *checkpoint != "" {
		eng, err = serve.LoadEngine(*checkpoint, *backend)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving checkpoint %s on the %s backend\n", *checkpoint, eng.Backend())
	} else {
		eng, canaryX, canaryY, err = demoEngine(*backend, proj, *canaryRows)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving synthetic WESAD demo model on the %s backend\n", eng.Backend())
	}

	srv, err := serve.NewServer(eng, serve.Config{
		MaxBatch: *maxBatch,
		MaxWait:  *maxWait,
		Workers:  *workers,
	})
	if err != nil {
		fail(err)
	}
	cfg := srv.Config()
	fmt.Printf("micro-batcher: max-batch %d, max-wait %v, %d workers\n",
		cfg.MaxBatch, cfg.MaxWait, cfg.Workers)

	if *traceSample < 0 {
		fail(fmt.Errorf("-trace-sample must be >= 0 (got %d)", *traceSample))
	}
	// Observability is always on: the histograms and the event journal
	// are allocation-free / off the hot path, and every subsystem below
	// (monitor, registry, trainer, handlers) reaches them through the
	// server. -trace-sample only governs per-request stage traces.
	ob := obs.NewServing(*traceSample, 0, 0)
	if *eventsFile != "" {
		if err := ob.Journal.Persist(*eventsFile); err != nil {
			fail(err)
		}
		fmt.Printf("observability: mirroring /events to %s\n", *eventsFile)
	}
	srv.SetObs(ob)
	if *traceSample > 0 {
		fmt.Printf("observability: tracing every %dth request into /trace\n", *traceSample)
	}

	hcfg := serve.HandlerConfig{
		MaxBodyBytes:  *bodyLimit,
		MaxBatchRows:  *maxRows,
		CheckpointDir: *checkpointDir,
		AuthToken:     *authToken,
	}
	var tr *trainer.Trainer
	if *useTrainer {
		tr, err = trainer.New(srv, trainer.Config{
			BufferCap:    *bufferCap,
			RetrainEvery: *retrainEvery,
			Backend:      *backend,
			Mode:         *retrainMode,
		})
		if err != nil {
			fail(err)
		}
		tr.Start()
		hcfg.Trainer = tr
		fmt.Printf("trainer: buffer %d, retrain-every %v (%s retrain, %s backend at swap)\n",
			*bufferCap, *retrainEvery, tr.Config().Mode, tr.Config().Backend)
	}
	if *checkpointDir != "" {
		fmt.Printf("/swap allowlist root: %s\n", *checkpointDir)
	}

	var reg *serve.TenantRegistry
	if *useTenants {
		dir := *tenantDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "boosthd-tenants-*")
			if err != nil {
				fail(err)
			}
			fmt.Printf("tenants: no -tenant-dir; deltas persist to ephemeral %s\n", dir)
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			fail(err)
		}
		reg, err = serve.NewTenantRegistry(srv, serve.TenantRegistryConfig{
			Store:     serve.NewFileDeltaStore(dir),
			CacheSize: *tenantCache,
			Shards:    *tenantShards,
		})
		if err != nil {
			fail(err)
		}
		tt, err := trainer.NewTenantTrainer(reg, trainer.TenantConfig{})
		if err != nil {
			fail(err)
		}
		hcfg.Tenants = reg
		hcfg.TenantTrainer = tt
		if *scrubEvery > 0 {
			// The reliability monitor signs the base once; the registry
			// scrubs each resident tenant delta separately on the same
			// cadence.
			reg.Start(*scrubEvery)
		}
		st := reg.Stats()
		fmt.Printf("tenants: delta store %s, cache %d views over %d shards, base %s\n",
			dir, st.Capacity, st.Shards, st.BaseHash)
	}

	var mon *reliability.Monitor
	if *scrubEvery > 0 {
		rcfg := reliability.Config{
			ScrubEvery:         *scrubEvery,
			QuarantineDrop:     *quarantineThreshold,
			SegmentWords:       *segmentWords,
			MinHealthyFraction: *minHealthy,
			// The served checkpoint doubles as the last verified copy:
			// restore quarantined learners from it.
			CheckpointPath: *checkpoint,
			// A trainer legitimately mutates class memory in place — but
			// it announces every update with a fresh signature through
			// the mutation-observer contract wired below, so scrubbing
			// stays strict instead of trusting version bumps wholesale.
			SignedUpdates: *useTrainer,
			// Every scrub verdict, quarantine, and repair outcome lands
			// in the /events journal with a per-pass correlation ID.
			Journal: ob.Journal,
		}
		if *checkpointDir != "" {
			// Fault history and criticality baselines survive restarts:
			// persisted after every scrub/repair pass, restored below.
			rcfg.StatePath = filepath.Join(*checkpointDir, "reliability_state.json")
		}
		if tr != nil {
			rcfg.Trainer = tr
		}
		mon, err = reliability.New(srv, rcfg)
		if err != nil {
			fail(err)
		}
		if tr != nil {
			tr.SetMutationObserver(mon.NoteMutation)
		}
		if len(canaryX) > 0 {
			if err := mon.SetCanary(canaryX, canaryY); err != nil {
				fail(err)
			}
		}
		// Load AFTER SetCanary so persisted baselines (and the expensive
		// criticality sweep) win over the freshly recomputed ones. A
		// mismatched or corrupt state file is loud but non-fatal: the
		// monitor starts with a blank ledger, as before persistence.
		if sp := rcfg.StatePath; sp != "" {
			switch err := mon.LoadState(sp); {
			case err == nil:
				fmt.Printf("reliability: restored health ledger from %s\n", sp)
			case errors.Is(err, os.ErrNotExist):
			default:
				fmt.Fprintln(os.Stderr, "boosthd-serve: starting with a fresh health ledger:", err)
			}
		}
		mon.Start()
		hcfg.Reliability = mon
		repair := "none (detect + quarantine only)"
		switch {
		case *checkpoint != "":
			repair = "checkpoint restore"
		case tr != nil:
			repair = "trainer hot-retrain"
		case eng.Binary() != nil && !eng.Binary().Frozen():
			repair = "re-threshold from float memory"
		}
		mcfg := mon.Config()
		fmt.Printf("reliability: scrub every %v, canary %d rows, quarantine drop %.2f, %d-word segments, min healthy fraction %.2f, repair via %s\n",
			*scrubEvery, len(canaryX), *quarantineThreshold, mcfg.SegmentWords, mcfg.MinHealthyFraction, repair)
	}
	if *chaos {
		hcfg.Chaos = &chaosInjector{srv: srv, rng: rand.New(rand.NewSource(1))}
		fmt.Println("chaos: POST /inject enabled (fault-injection drills)")
	}

	// A configured http.Server instead of bare ListenAndServe: header and
	// body reads, response writes, and idle keep-alives all time out, so
	// a slow-drip client (Slowloris) cannot pin a connection forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(srv, hcfg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("listening on %s\n", *addr)

	// The pprof listener is a separate mux on a separate port — never the
	// serving mux, so profiling can stay firewalled while /predict is
	// exposed. It carries no auth: bind it to localhost.
	var dbgSrv *http.Server
	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: dm, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "boosthd-serve: debug listener:", err)
			}
		}()
		fmt.Printf("debug: pprof on %s/debug/pprof/ (unauthenticated; keep it local)\n", *debugAddr)
	}

	sigCh := make(chan os.Signal, 1)
	osignal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fail(err)
	case sig := <-sigCh:
		fmt.Printf("caught %v, draining\n", sig)
	}
	// Graceful shutdown: stop accepting and let in-flight handlers
	// finish, halt the retrain loop, then drain the micro-batcher —
	// everything it accepted is still served before exit. The HTTP
	// drain and the retrain-loop wait share ONE -shutdown-grace budget
	// (an in-flight paper-scale refit can run for minutes, and two
	// stacked grace periods would blow past the orchestrator's kill
	// window the bound exists to respect).
	deadline := time.Now().Add(*shutdownGrace)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "boosthd-serve: shutdown:", err)
	}
	if dbgSrv != nil {
		_ = dbgSrv.Shutdown(ctx)
	}
	if tr != nil {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			remaining = time.Millisecond
		}
		if !tr.StopWait(remaining) {
			fmt.Fprintln(os.Stderr, "boosthd-serve: retrain still running past shutdown grace; abandoning it")
		}
	}
	if reg != nil {
		reg.Stop()
	}
	if mon != nil {
		mon.Stop()
		if sp := mon.Config().StatePath; sp != "" {
			if err := mon.SaveState(sp); err != nil {
				fmt.Fprintln(os.Stderr, "boosthd-serve:", err)
			}
		}
	}
	srv.Close()
	if err := ob.Journal.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "boosthd-serve: events file:", err)
	}
	fmt.Println("drained; bye")
}

// demoEngine trains a small ensemble on the synthetic WESAD workload so
// the server is usable without a checkpoint file. canary > 0 holds that
// many held-out (subject-disjoint, train-normalized) rows back as the
// reliability monitor's canary set.
func demoEngine(backend string, proj encoding.Projection, canary int) (*infer.Engine, [][]float64, []int, error) {
	cfg := synth.WESADConfig()
	cfg.NumSubjects = 12
	cfg.SamplesPerState = 1536
	data, roster, err := synth.Build(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	train, test, _, err := synth.SubjectSplit(data, roster, 0.3, 11)
	if err != nil {
		return nil, nil, nil, err
	}
	norm, err := signal.FitNormalizer(train.X, signal.ZScore)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := norm.Apply(train.X); err != nil {
		return nil, nil, nil, err
	}
	mcfg := boosthd.DefaultConfig(10000, 10, data.NumClasses)
	mcfg.Epochs = 5
	mcfg.Projection = proj
	m, err := boosthd.Train(train.X, train.Y, mcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var canaryX [][]float64
	var canaryY []int
	if canary > 0 {
		if canary > len(test.X) {
			canary = len(test.X)
		}
		if _, err := norm.Apply(test.X[:canary]); err != nil {
			return nil, nil, nil, err
		}
		canaryX, canaryY = test.X[:canary], test.Y[:canary]
	}
	var eng *infer.Engine
	switch strings.ToLower(backend) {
	case "", "float":
		eng = infer.NewEngine(m)
	case "binary", "packed-binary":
		eng, err = infer.NewBinaryEngine(m)
		if err != nil {
			return nil, nil, nil, err
		}
	default:
		return nil, nil, nil, fmt.Errorf("unknown backend %q (want float or binary)", backend)
	}
	return eng, canaryX, canaryY, nil
}

// chaosInjector is the -chaos implementation of serve.Chaos: it flips
// bits of the live packed-binary planes through the engine's
// clone-and-swap injection path, exactly the silent word-fault model
// the reliability monitor exists to catch. The rng is guarded so
// concurrent drills do not race it.
type chaosInjector struct {
	mu  sync.Mutex
	srv *serve.Server
	rng *rand.Rand
}

func (c *chaosInjector) InjectWords(pb float64) (int, error) {
	bin := c.srv.Engine().Binary()
	if bin == nil {
		return 0, fmt.Errorf("%w: chaos injection needs the binary backend (serving float)", serve.ErrBadInput)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	inj, err := faults.NewInjector(pb, c.rng)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", serve.ErrBadInput, err)
	}
	return bin.InjectWordFaults(inj), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "boosthd-serve:", err)
	os.Exit(1)
}
