// Command boosthd-serve runs the HTTP/JSON serving layer over a trained
// BoostHD model: concurrent /predict requests are coalesced by the
// adaptive micro-batcher into the engine's fused batch pipeline, and
// /swap hot-loads a new checkpoint without dropping in-flight requests.
//
// Usage:
//
//	boosthd-serve [-addr :8080] [-checkpoint model.bhde] [-backend float|binary]
//	              [-max-batch 64] [-max-wait 200us] [-workers N]
//
// -checkpoint accepts a float ensemble checkpoint (written by
// Model.Save / cmd/boosthd -save) or, with -backend binary, a quantized
// binary snapshot (BinaryModel.Save) that cold-loads without
// re-quantization. Without -checkpoint the server trains a demo model on
// the synthetic WESAD workload so the endpoints can be exercised
// immediately.
//
// Endpoints:
//
//	POST /predict        {"features":[...]}                      -> {"label":n}
//	POST /predict_batch  {"rows":[[...],...]}                    -> {"labels":[...]}
//	GET  /healthz                                                -> serving stats
//	POST /swap           {"checkpoint":"path","backend":"float"} -> swap report
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"boosthd/internal/boosthd"
	"boosthd/internal/infer"
	"boosthd/internal/serve"
	"boosthd/internal/signal"
	"boosthd/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	checkpoint := flag.String("checkpoint", "", "model checkpoint to serve (empty = train a synthetic demo model)")
	backend := flag.String("backend", "float", "serving backend: float or binary")
	maxBatch := flag.Int("max-batch", 0, "micro-batcher max coalesced rows (0 = default 64)")
	maxWait := flag.Duration("max-wait", 0, "micro-batcher straggler wait (0 = default 200us)")
	workers := flag.Int("workers", 0, "batch executor goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	var (
		eng *infer.Engine
		err error
	)
	if *checkpoint != "" {
		eng, err = serve.LoadEngine(*checkpoint, *backend)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving checkpoint %s on the %s backend\n", *checkpoint, eng.Backend())
	} else {
		eng, err = demoEngine(*backend)
		if err != nil {
			fail(err)
		}
		fmt.Printf("serving synthetic WESAD demo model on the %s backend\n", eng.Backend())
	}

	srv, err := serve.NewServer(eng, serve.Config{
		MaxBatch: *maxBatch,
		MaxWait:  *maxWait,
		Workers:  *workers,
	})
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	cfg := srv.Config()
	fmt.Printf("micro-batcher: max-batch %d, max-wait %v, %d workers\n",
		cfg.MaxBatch, cfg.MaxWait, cfg.Workers)
	fmt.Printf("listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, serve.Handler(srv)); err != nil {
		fail(err)
	}
}

// demoEngine trains a small ensemble on the synthetic WESAD workload so
// the server is usable without a checkpoint file.
func demoEngine(backend string) (*infer.Engine, error) {
	cfg := synth.WESADConfig()
	cfg.NumSubjects = 12
	cfg.SamplesPerState = 1536
	data, roster, err := synth.Build(cfg)
	if err != nil {
		return nil, err
	}
	train, _, _, err := synth.SubjectSplit(data, roster, 0.3, 11)
	if err != nil {
		return nil, err
	}
	norm, err := signal.FitNormalizer(train.X, signal.ZScore)
	if err != nil {
		return nil, err
	}
	if _, err := norm.Apply(train.X); err != nil {
		return nil, err
	}
	mcfg := boosthd.DefaultConfig(10000, 10, data.NumClasses)
	mcfg.Epochs = 5
	m, err := boosthd.Train(train.X, train.Y, mcfg)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(backend) {
	case "", "float":
		return infer.NewEngine(m), nil
	case "binary", "packed-binary":
		return infer.NewBinaryEngine(m)
	default:
		return nil, fmt.Errorf("unknown backend %q (want float or binary)", backend)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "boosthd-serve:", err)
	os.Exit(1)
}
