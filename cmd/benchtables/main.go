// Command benchtables regenerates every table and figure of the paper's
// evaluation as text, using the synthetic dataset substrate.
//
// Usage:
//
//	benchtables [-exp all|table1|table2|table3|fig2|fig3|fig4|fig5|fig6|fig7|fig8|infer|serve|tenants|drift|reliability|ecc]
//	            [-full] [-runs N] [-seed N]
//
// By default experiments run in the quick configuration (reduced dims and
// cohorts, minutes total); -full switches to the paper-scale setup.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"boosthd/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, table3, fig2..fig8, infer, serve, tenants, drift, reliability, ecc")
	full := flag.Bool("full", false, "paper-scale configuration (slow)")
	runs := flag.Int("runs", 0, "override number of runs per cell")
	seed := flag.Int64("seed", 7, "base random seed")
	flag.Parse()

	opt := experiments.Defaults()
	if *full {
		opt = experiments.PaperScale()
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	opt.Seed = *seed

	type runner struct {
		name string
		run  func() error
	}
	show := func(t *experiments.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Println()
		return t.Render(os.Stdout)
	}
	runners := []runner{
		{"table1", func() error { t, err := experiments.RunTableI(opt); return show(t, err) }},
		{"table2", func() error { t, err := experiments.RunTableII(opt); return show(t, err) }},
		{"table3", func() error { t, err := experiments.RunTableIII(opt); return show(t, err) }},
		{"fig2", func() error { t, err := experiments.RunFigure2(opt); return show(t, err) }},
		{"fig3", func() error {
			a, b, err := experiments.RunFigure3(opt)
			if err != nil {
				return err
			}
			if err := show(a, nil); err != nil {
				return err
			}
			return show(b, nil)
		}},
		{"fig4", func() error { t, err := experiments.RunFigure4(opt); return show(t, err) }},
		{"fig5", func() error { t, err := experiments.RunFigure5(opt); return show(t, err) }},
		{"fig6", func() error { t, err := experiments.RunFigure6(opt); return show(t, err) }},
		{"fig7", func() error { t, err := experiments.RunFigure7(opt); return show(t, err) }},
		{"fig8", func() error { t, err := experiments.RunFigure8(opt); return show(t, err) }},
		{"infer", func() error {
			t, err := experiments.RunInferBench(opt)
			if err := show(t, err); err != nil {
				return err
			}
			a, b, err := experiments.RunInferSweep(opt)
			if err != nil {
				return err
			}
			if err := show(a, nil); err != nil {
				return err
			}
			return show(b, nil)
		}},
		{"serve", func() error { t, err := experiments.RunServeBench(opt); return show(t, err) }},
		{"tenants", func() error {
			t, err := experiments.RunTenants(opt)
			if err := show(t, err); err != nil {
				return err
			}
			c, err := experiments.RunTenantContention(opt)
			return show(c, err)
		}},
		{"drift", func() error { t, err := experiments.RunDrift(opt); return show(t, err) }},
		{"reliability", func() error { t, err := experiments.RunReliability(opt); return show(t, err) }},
		{"ecc", func() error { t, err := experiments.RunECC(opt); return show(t, err) }},
	}

	want := strings.ToLower(*exp)
	matched := false
	for _, r := range runners {
		if want != "all" && want != r.name {
			continue
		}
		matched = true
		start := time.Now()
		if err := r.run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
