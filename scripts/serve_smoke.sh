#!/usr/bin/env bash
# End-to-end smoke for the serving + continual-learning stack: train a
# tiny checkpoint, serve it with the trainer enabled, stream labeled
# observations over /observe, trigger a hot retrain over /retrain, and
# assert the atomic engine swap registered in /healthz. Finishes by
# SIGTERM-ing the server, exercising the graceful drain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== training tiny checkpoint"
go run ./cmd/boosthd -dataset wesad -dim 800 -nl 4 -epochs 2 -runs 1 \
  -subjects 6 -samples 512 -save "$workdir/model.bhde"

echo "== starting boosthd-serve with the trainer and the reliability scrubber"
go build -o "$workdir/boosthd-serve" ./cmd/boosthd-serve
"$workdir/boosthd-serve" -addr 127.0.0.1:18080 -checkpoint "$workdir/model.bhde" \
  -trainer -buffer 512 -checkpoint-dir "$workdir" -scrub-every 500ms &
server_pid=$!

up=""
for _ in $(seq 1 100); do
  if curl -fs http://127.0.0.1:18080/healthz >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
[ -n "$up" ] || { echo "server never came up"; exit 1; }

echo "== observe -> retrain -> healthz"
python3 - <<'EOF'
import json, random, urllib.request

base = "http://127.0.0.1:18080"

def call(path, payload=None):
    if payload is None:
        req = urllib.request.Request(base + path)
    else:
        req = urllib.request.Request(base + path, json.dumps(payload).encode(),
                                     {"Content-Type": "application/json"})
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())

health = call("/healthz")
dim = health["input_dim"]
assert health["swaps"] == 0, health

rng = random.Random(7)
rows = [[rng.gauss(0, 1) for _ in range(dim)] for _ in range(96)]
labels = [i % 3 for i in range(96)]
ingested = call("/observe", {"rows": rows, "labels": labels})
assert ingested["accepted"] == 96, ingested

pred = call("/predict", {"features": rows[0]})
assert "label" in pred, pred

report = call("/retrain", {})
assert report["swapped"], report

health = call("/healthz")
assert health["swaps"] >= 1, health
assert health["trainer"]["retrains"] >= 1, health
assert health["trainer"]["observed"] == 96, health
assert health["model"]["version"] >= 2, health          # the swap landed
assert health["model"]["backend"] == "float", health
assert health["reliability"]["degraded"] is False, health

import time
time.sleep(1.2)  # let the scrubber tick over the retrained model
rel = call("/reliability")
assert rel["scrubs"] >= 1, rel
assert rel["learners"] > 0 and not rel["degraded"], rel
assert all(e["state"] == "healthy" for e in rel["ledger"]), rel
print("smoke ok:", json.dumps(health))
EOF

echo "== graceful shutdown"
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "serve smoke passed"
