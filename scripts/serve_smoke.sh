#!/usr/bin/env bash
# End-to-end smoke for the serving + continual-learning + reliability
# stack: train a tiny checkpoint, serve it quantized with the trainer
# and scrubber enabled, stream labeled observations over /observe,
# trigger a hot retrain over /retrain, then run a multi-tenant drill:
# two tenants personalize the shared base with conflicting label
# streams over /t/{tenant}/observe + retrain, and the script asserts
# each sees only its own adaptation (base hash unchanged, views
# mutually distinct) and that a subsequent base retrain republishes to
# both without losing their deltas. Ends with a chaos drill: inject
# word faults over /inject and assert the monitor repairs them at
# dimension granularity — no learner's alpha ever reaches 0 (state
# never "quarantined", healthy_fraction never 0) — then replays the
# whole incident from GET /events and asserts the journal recorded it
# completely and in causal order. Finishes by SIGTERM-ing the server,
# exercising the graceful drain, and checks the JSONL event mirror
# survived on disk.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== training tiny checkpoint"
go run ./cmd/boosthd -dataset wesad -dim 800 -nl 4 -epochs 2 -runs 1 \
  -subjects 6 -samples 512 -save "$workdir/model.bhde"

echo "== starting boosthd-serve (binary backend) with the trainer, the reliability scrubber, and chaos injection"
go build -o "$workdir/boosthd-serve" ./cmd/boosthd-serve
# -min-healthy 0.3: the tiny demo model has only 4 one-word segments
# per learner, so two unlucky flips in one learner would mask half of
# it — keep the escalation floor below that so the drill stays in the
# dimension tier by construction, not by RNG luck.
"$workdir/boosthd-serve" -addr 127.0.0.1:18080 -checkpoint "$workdir/model.bhde" \
  -backend binary -trainer -buffer 512 -checkpoint-dir "$workdir" \
  -tenants -tenant-dir "$workdir/tenants" \
  -scrub-every 300ms -segment-words 1 -min-healthy 0.3 -chaos \
  -trace-sample 5 -events-file "$workdir/events.jsonl" &
server_pid=$!

up=""
for _ in $(seq 1 100); do
  if curl -fs http://127.0.0.1:18080/healthz >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
[ -n "$up" ] || { echo "server never came up"; exit 1; }

echo "== observe -> retrain -> healthz"
python3 - <<'EOF'
import json, random, urllib.request

base = "http://127.0.0.1:18080"

def call(path, payload=None):
    if payload is None:
        req = urllib.request.Request(base + path)
    else:
        req = urllib.request.Request(base + path, json.dumps(payload).encode(),
                                     {"Content-Type": "application/json"})
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())

health = call("/healthz")
dim = health["input_dim"]
assert health["swaps"] == 0, health

rng = random.Random(7)
rows = [[rng.gauss(0, 1) for _ in range(dim)] for _ in range(96)]
labels = [i % 3 for i in range(96)]
ingested = call("/observe", {"rows": rows, "labels": labels})
assert ingested["accepted"] == 96, ingested

pred = call("/predict", {"features": rows[0]})
assert "label" in pred, pred

report = call("/retrain", {})
assert report["swapped"], report

health = call("/healthz")
assert health["swaps"] >= 1, health
assert health["trainer"]["retrains"] >= 1, health
assert health["trainer"]["observed"] == 96, health
assert health["model"]["version"] >= 2, health          # the swap landed
assert health["model"]["backend"] == "packed-binary", health
assert health["reliability"]["degraded"] is False, health

# Multi-tenant drill: two wearers personalize the shared base with
# conflicting label streams — streams that could only coexist through
# per-tenant copy-on-write isolation.
ts0 = call("/tenants")
assert ts0["residents"] == 0, ts0
probe = rows[:32]
base_pred = call("/predict_batch", {"rows": probe})["labels"]

call("/t/wearer-a/observe", {"rows": rows, "labels": [(l + 1) % 3 for l in labels]})
call("/t/wearer-b/observe", {"rows": rows, "labels": [(l + 2) % 3 for l in labels]})
ra = call("/t/wearer-a/retrain", {})
rb = call("/t/wearer-b/retrain", {})
assert ra["swapped"] and ra["mode"] == "tenant-delta", ra
assert rb["swapped"] and rb["mode"] == "tenant-delta", rb

pa = call("/t/wearer-a/predict_batch", {"rows": probe})["labels"]
pb = call("/t/wearer-b/predict_batch", {"rows": probe})["labels"]
assert pa != base_pred, "tenant-a view identical to the base"
assert pb != base_pred and pa != pb, "tenant views not isolated from each other"
assert call("/predict_batch", {"rows": probe})["labels"] == base_pred, \
    "tenant retrain leaked into the shared base"
# The registry tracks the base lazily (views rebuild on the next
# resolve), so capture its identity only after the tenant resolves
# above have refreshed it.
ts = call("/tenants")
assert ts["residents"] == 2 and ts["resident_bytes"] > 0, ts
base_hash = ts["base_hash"]
assert call("/tenants")["base_hash"] == base_hash, "base identity moved during tenant predicts"

# A base retrain republishes to every tenant: the base hash moves,
# resident views rebuild onto the new base, and the deltas survive.
call("/observe", {"rows": rows, "labels": labels})
assert call("/retrain", {})["swapped"]
pa2 = call("/t/wearer-a/predict_batch", {"rows": probe})["labels"]
pb2 = call("/t/wearer-b/predict_batch", {"rows": probe})["labels"]
assert pa2 != call("/predict_batch", {"rows": probe})["labels"], \
    "tenant delta lost across the base swap"
assert pa2 != pb2, "tenant views collapsed across the base swap"
ts2 = call("/tenants")
assert ts2["base_hash"] != base_hash, ts2
assert ts2["rebuilds"] >= 2, ts2
assert ts2["shards"] >= 1, ts2
print("tenant drill ok: residents=%d bytes=%d rebuilds=%d shards=%d" %
      (ts2["residents"], ts2["resident_bytes"], ts2["rebuilds"], ts2["shards"]))

# Coalescing drill: base and two-tenant traffic interleaved from
# concurrent threads rides one micro-batcher — tenant rows must share
# engine batch calls with their same-view peers (coalesced counter
# moves) while every row still lands on its own tenant's view
# (per-tenant predictions identical to the direct batch path).
import threading
want = {
    "/predict": call("/predict_batch", {"rows": probe})["labels"],
    "/t/wearer-a/predict": call("/t/wearer-a/predict_batch", {"rows": probe})["labels"],
    "/t/wearer-b/predict": call("/t/wearer-b/predict_batch", {"rows": probe})["labels"],
}
bt0 = call("/healthz")["batcher"]
drill_errs = []
def hammer(path, labels):
    try:
        for i, row in enumerate(probe):
            got = call(path, {"features": row})["label"]
            assert got == labels[i], (path, i, got, labels[i])
    except Exception as e:  # surfaced on the main thread below
        drill_errs.append(e)
threads = [threading.Thread(target=hammer, args=(p, w)) for p, w in want.items() for _ in range(2)]
for t in threads: t.start()
for t in threads: t.join()
assert not drill_errs, drill_errs
assert want["/t/wearer-a/predict"] != want["/t/wearer-b/predict"], "tenant views converged"
bt = call("/healthz")["batcher"]
assert bt["tenant_rows"] > bt0["tenant_rows"], (bt0, bt)
assert bt["coalesced_rows"] > bt0["coalesced_rows"], \
    ("tenant traffic never shared an engine batch call", bt0, bt)
print("coalescing drill ok: +%d tenant rows, +%d coalesced rows, %d flushes" %
      (bt["tenant_rows"] - bt0["tenant_rows"],
       bt["coalesced_rows"] - bt0["coalesced_rows"], bt["flushes"]))

import time
time.sleep(0.8)  # let the scrubber tick over the retrained model
rel = call("/reliability")
assert rel["scrubs"] >= 1, rel
assert rel["learners"] > 0 and not rel["degraded"], rel
assert all(e["state"] == "healthy" for e in rel["ledger"]), rel
assert rel["segment_words"] == 1, rel

# Chaos drill: inject silent word faults into the live quantized planes
# and watch the monitor repair them at dimension granularity. The key
# assertion: no learner's vote is ever fully silenced — every ledger
# state stays "healthy" or "degraded" (dimension-masked) with a
# non-zero healthy fraction, and repairs land without intervention.
# Low pb + stop at the first hit keeps the injected damage to a flip
# or two — squarely in dimension-mask territory under -min-healthy 0.3.
repairs0 = rel["repairs"]
flips = 0
for _ in range(100):
    r = call("/inject", {"pb": 1e-4})
    flips += r["flips"]
    if flips > 0:
        break
assert flips > 0, "chaos injection never flipped a bit"

deadline = time.time() + 20
saw_masked = False
while True:
    rel = call("/reliability")
    for e in rel["ledger"]:
        assert e["state"] != "quarantined", rel   # alpha never reaches 0
        assert e["healthy_fraction"] > 0, rel
    if rel.get("masked_words", 0) > 0 or rel.get("dim_masked"):
        saw_masked = True
    if rel["repairs"] > repairs0 and not rel["degraded"]:
        break
    assert time.time() < deadline, ("word fault never repaired", rel)
    time.sleep(0.1)
assert rel["detections"] >= 1, rel
assert all(e["state"] == "healthy" for e in rel["ledger"]), rel
print("smoke ok: chaos drill repaired %d flips (dimension-masked seen: %s)" % (flips, saw_masked))

# Event journal replay: the incident above must appear in GET /events as
# a complete, ordered, attributed sequence — inject, then the scrub
# verdict naming learners, then its quarantine/dim-mask (same pass
# correlation ID), then repair and unmask (a different pass ID).
page = call("/events")
events = page["events"]
assert events, page
seqs = [e["seq"] for e in events]
assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), "journal sequence not monotone"

def idx_of(typ, after=-1, **want):
    for i in range(after + 1, len(events)):
        e = events[i]
        if e["type"] == typ and all(e.get(k) == v for k, v in want.items()):
            return i
    raise AssertionError("no %r event after index %d in %r" % (typ, after, events))

i_inject = idx_of("inject")
i_scrub = idx_of("scrub", i_inject)
scrub = events[i_scrub]
assert scrub["learners"], scrub
i_mask = i_scrub + 1
while i_mask < len(events) and events[i_mask]["type"] not in ("quarantine", "dim_mask"):
    i_mask += 1
assert i_mask < len(events), "no mask event after the scrub verdict"
mask = events[i_mask]
assert mask["corr"] == scrub["corr"], (mask, scrub)
i_repair = idx_of("repair", i_mask)
repair = events[i_repair]
assert repair["corr"] != scrub["corr"], "repair pass reused the scrub correlation ID"
i_unmask = idx_of("unmask", i_repair)
assert events[i_unmask]["corr"] == repair["corr"], (events[i_unmask], repair)
# Retrain republishes also landed in the journal earlier in the run.
idx_of("retrain")
# Incremental polling resumes exactly past the cursor.
tail = call("/events?since=%d" % events[i_repair - 1]["seq"])
assert tail["events"] and tail["events"][0]["seq"] == repair["seq"], tail

# The tracer samples every 5th micro-batched request: a burst of
# single predicts must land at least two full stage traces.
for i in range(12):
    call("/predict", {"features": rows[i % len(rows)]})
tr = call("/trace")
assert tr["sample_every"] == 5 and tr["sampled"] >= 2 and tr["traces"], tr
for t in tr["traces"]:
    assert t["corr"] > 0 and t["total_ns"] > 0, t
    assert set(t["stage_ns"]) == {"admission", "queue", "encode", "score", "aggregate"}, t
print("events ok: %d journal events, drill replay in order; %d traces sampled"
      % (len(events), len(tr["traces"])))
print("smoke ok:", json.dumps(health))
EOF

echo "== graceful shutdown"
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== event journal persisted to disk"
[ -s "$workdir/events.jsonl" ] || { echo "events.jsonl empty or missing"; exit 1; }
python3 - "$workdir/events.jsonl" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert lines, "no journal lines on disk"
seqs = [e["seq"] for e in lines]
assert seqs == sorted(seqs), "persisted journal out of order"
types = {e["type"] for e in lines}
for needed in ("inject", "scrub", "repair", "unmask", "engine_swap", "retrain"):
    assert needed in types, (needed, types)
print("journal ok: %d events persisted (%d types)" % (len(lines), len(types)))
EOF
echo "serve smoke passed"
