#!/usr/bin/env bash
# End-to-end smoke for the serving + continual-learning + reliability
# stack: train a tiny checkpoint, serve it quantized with the trainer
# and scrubber enabled, stream labeled observations over /observe,
# trigger a hot retrain over /retrain, then run a chaos drill: inject
# word faults over /inject and assert the monitor repairs them at
# dimension granularity — no learner's alpha ever reaches 0 (state
# never "quarantined", healthy_fraction never 0). Finishes by
# SIGTERM-ing the server, exercising the graceful drain.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== training tiny checkpoint"
go run ./cmd/boosthd -dataset wesad -dim 800 -nl 4 -epochs 2 -runs 1 \
  -subjects 6 -samples 512 -save "$workdir/model.bhde"

echo "== starting boosthd-serve (binary backend) with the trainer, the reliability scrubber, and chaos injection"
go build -o "$workdir/boosthd-serve" ./cmd/boosthd-serve
# -min-healthy 0.3: the tiny demo model has only 4 one-word segments
# per learner, so two unlucky flips in one learner would mask half of
# it — keep the escalation floor below that so the drill stays in the
# dimension tier by construction, not by RNG luck.
"$workdir/boosthd-serve" -addr 127.0.0.1:18080 -checkpoint "$workdir/model.bhde" \
  -backend binary -trainer -buffer 512 -checkpoint-dir "$workdir" \
  -scrub-every 300ms -segment-words 1 -min-healthy 0.3 -chaos &
server_pid=$!

up=""
for _ in $(seq 1 100); do
  if curl -fs http://127.0.0.1:18080/healthz >/dev/null 2>&1; then up=1; break; fi
  sleep 0.2
done
[ -n "$up" ] || { echo "server never came up"; exit 1; }

echo "== observe -> retrain -> healthz"
python3 - <<'EOF'
import json, random, urllib.request

base = "http://127.0.0.1:18080"

def call(path, payload=None):
    if payload is None:
        req = urllib.request.Request(base + path)
    else:
        req = urllib.request.Request(base + path, json.dumps(payload).encode(),
                                     {"Content-Type": "application/json"})
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())

health = call("/healthz")
dim = health["input_dim"]
assert health["swaps"] == 0, health

rng = random.Random(7)
rows = [[rng.gauss(0, 1) for _ in range(dim)] for _ in range(96)]
labels = [i % 3 for i in range(96)]
ingested = call("/observe", {"rows": rows, "labels": labels})
assert ingested["accepted"] == 96, ingested

pred = call("/predict", {"features": rows[0]})
assert "label" in pred, pred

report = call("/retrain", {})
assert report["swapped"], report

health = call("/healthz")
assert health["swaps"] >= 1, health
assert health["trainer"]["retrains"] >= 1, health
assert health["trainer"]["observed"] == 96, health
assert health["model"]["version"] >= 2, health          # the swap landed
assert health["model"]["backend"] == "packed-binary", health
assert health["reliability"]["degraded"] is False, health

import time
time.sleep(0.8)  # let the scrubber tick over the retrained model
rel = call("/reliability")
assert rel["scrubs"] >= 1, rel
assert rel["learners"] > 0 and not rel["degraded"], rel
assert all(e["state"] == "healthy" for e in rel["ledger"]), rel
assert rel["segment_words"] == 1, rel

# Chaos drill: inject silent word faults into the live quantized planes
# and watch the monitor repair them at dimension granularity. The key
# assertion: no learner's vote is ever fully silenced — every ledger
# state stays "healthy" or "degraded" (dimension-masked) with a
# non-zero healthy fraction, and repairs land without intervention.
# Low pb + stop at the first hit keeps the injected damage to a flip
# or two — squarely in dimension-mask territory under -min-healthy 0.3.
repairs0 = rel["repairs"]
flips = 0
for _ in range(100):
    r = call("/inject", {"pb": 1e-4})
    flips += r["flips"]
    if flips > 0:
        break
assert flips > 0, "chaos injection never flipped a bit"

deadline = time.time() + 20
saw_masked = False
while True:
    rel = call("/reliability")
    for e in rel["ledger"]:
        assert e["state"] != "quarantined", rel   # alpha never reaches 0
        assert e["healthy_fraction"] > 0, rel
    if rel.get("masked_words", 0) > 0 or rel.get("dim_masked"):
        saw_masked = True
    if rel["repairs"] > repairs0 and not rel["degraded"]:
        break
    assert time.time() < deadline, ("word fault never repaired", rel)
    time.sleep(0.1)
assert rel["detections"] >= 1, rel
assert all(e["state"] == "healthy" for e in rel["ledger"]), rel
print("smoke ok: chaos drill repaired %d flips (dimension-masked seen: %s)" % (flips, saw_masked))
print("smoke ok:", json.dumps(health))
EOF

echo "== graceful shutdown"
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "serve smoke passed"
