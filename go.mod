module boosthd

go 1.22
