module boosthd

go 1.21
